package hashdb

import (
	"errors"
	"os"
	"testing"

	"shhc/internal/device"
	"shhc/internal/fingerprint"
)

// osWriteFile indirection keeps hashdb_test.go free of an os import cycle
// concern and gives one place to adjust permissions.
func osWriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func TestMemStoreRoundTrip(t *testing.T) {
	s := NewMemStore(nil)
	defer s.Close()

	created, err := s.Put(fp(1), 11)
	if err != nil || !created {
		t.Fatalf("Put = (%v, %v), want (true, nil)", created, err)
	}
	created, err = s.Put(fp(1), 12)
	if err != nil || created {
		t.Fatalf("overwrite Put = (%v, %v), want (false, nil)", created, err)
	}
	v, ok, err := s.Get(fp(1))
	if err != nil || !ok || v != 12 {
		t.Fatalf("Get = (%v, %v, %v), want (12, true, nil)", v, ok, err)
	}
	if ok, _ := s.Has(fp(2)); ok {
		t.Fatal("Has(absent) = true")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestMemStoreDelete(t *testing.T) {
	s := NewMemStore(nil)
	defer s.Close()
	s.Put(fp(1), 1)
	if ok, _ := s.Delete(fp(1)); !ok {
		t.Fatal("Delete(present) = false")
	}
	if ok, _ := s.Delete(fp(1)); ok {
		t.Fatal("Delete(absent) = true")
	}
}

func TestMemStoreRange(t *testing.T) {
	s := NewMemStore(nil)
	defer s.Close()
	for i := uint64(0); i < 50; i++ {
		s.Put(fp(i), Value(i))
	}
	seen := 0
	s.Range(func(f fingerprint.Fingerprint, v Value) bool {
		seen++
		return true
	})
	if seen != 50 {
		t.Fatalf("Range visited %d, want 50", seen)
	}
}

func TestMemStoreClosed(t *testing.T) {
	s := NewMemStore(nil)
	s.Close()
	if _, _, err := s.Get(fp(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after close = %v, want ErrClosed", err)
	}
	if _, err := s.Put(fp(1), 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after close = %v, want ErrClosed", err)
	}
	if err := s.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after close = %v, want ErrClosed", err)
	}
	if err := s.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double Close = %v, want ErrClosed", err)
	}
}

func TestMemStoreChargesDevice(t *testing.T) {
	dev := device.New(device.RAM, device.Account)
	s := NewMemStore(dev)
	defer s.Close()
	s.Put(fp(1), 1)
	s.Get(fp(1))
	st := dev.Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("device ops = %d reads / %d writes, want 1/1", st.Reads, st.Writes)
	}
}

// openRW opens a database file raw for corruption injection in tests.
func openRW(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_RDWR, 0)
}
