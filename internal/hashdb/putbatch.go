package hashdb

// This file implements the batched write path: the write-side twin of the
// coalesced read path in batch.go. A PutBatch groups its pairs by bucket
// page and performs one read-modify-write per bucket chain — every chain
// page is read at most once and written at most once no matter how many of
// the batch's entries land on it — with chains processed concurrently up
// to parallel.IODepth. This is what turns the small random SSD writes that
// dominate flash-backed stores into a handful of large page writes.

import (
	"context"
	"sync"
	"sync/atomic"

	"shhc/internal/fingerprint"
	"shhc/internal/parallel"
)

// Pair couples a fingerprint with the value to store for it.
type Pair struct {
	FP  fingerprint.Fingerprint
	Val Value
}

// BatchPutter is implemented by stores whose point inserts can be
// coalesced into one batched read-modify-write per bucket page. The hybrid
// node's batch-insert arm and its group-commit destager use it to pay one
// page write per dirtied page instead of one device round-trip per entry.
type BatchPutter interface {
	// PutBatch stores every pair, overwriting existing values. created
	// reports, in input order, whether each pair created a new entry
	// (a fingerprint appearing twice in one batch resolves in input
	// order, so the second occurrence is an update). pagesWritten is the
	// number of device page writes the batch cost — entry writes for
	// stores without pages — the denominator of the write-coalescing
	// ratio. A store error fails the whole batch. A cancelled ctx stops
	// the batch from issuing device I/O for further bucket chains and
	// fails it with ctx.Err(); a chain whose in-memory mutation has
	// finished always writes out completely, so cancellation can strand
	// at most already-allocated (unreferenced) overflow pages, never a
	// torn chain.
	PutBatch(ctx context.Context, pairs []Pair) (created []bool, pagesWritten int, err error)
}

var (
	_ BatchPutter = (*DB)(nil)
	_ BatchPutter = (*MemStore)(nil)
)

// PutBatch stores every pair with one read-modify-write per distinct
// bucket chain. Chains run concurrently up to parallel.IODepth, so modeled
// (Sleep-mode) devices overlap page I/O the way real flash channels do.
//
// The bucket grouping is computed without locks, so a concurrent linear-
// hashing split can remap some pairs between grouping and the stripe
// lock; putChain detects those under the lock and reports them back, and
// the batch simply regroups and retries the leftovers — splits are rare
// and move at most one bucket at a time, so the retry set collapses
// immediately.
func (db *DB) PutBatch(ctx context.Context, pairs []Pair) ([]bool, int, error) {
	created := make([]bool, len(pairs))
	if len(pairs) == 0 {
		return created, 0, nil
	}
	var pages atomic.Int64
	pending := make([]int, len(pairs))
	for i := range pending {
		pending[i] = i
	}
	for len(pending) > 0 {
		work := groupIdxBy(pending, func(i int) uint64 { return db.bucketOf(pairs[i].FP) })
		var staleMu sync.Mutex
		var stale []int
		err := parallel.Do(ctx, len(work), parallel.IODepth, func(w int) error {
			idxs := work[w]
			n, st, err := db.putChain(ctx, db.bucketOf(pairs[idxs[0]].FP), idxs, pairs, created)
			pages.Add(int64(n))
			if len(st) > 0 {
				staleMu.Lock()
				stale = append(stale, st...)
				staleMu.Unlock()
			}
			return err
		})
		if err != nil {
			return nil, 0, err
		}
		pending = stale
	}
	if err := db.maybeSplit(); err != nil {
		return nil, 0, err
	}
	return created, int(pages.Load()), nil
}

// chainPage is one page of a bucket chain held in memory during a batched
// read-modify-write. no == 0 marks a fresh overflow page whose file
// position has not been allocated yet.
type chainPage struct {
	no    uint64
	buf   []byte
	dirty bool
}

// putChain applies the group's pairs to one bucket chain as a single
// read-modify-write under the owning stripe's lock: the chain is read once
// into pooled page buffers, all updates and appends are applied in memory
// (growing the chain with placeholder pages when it fills), overflow
// allocations claim their page numbers in one allocRun call (draining the
// free list before extending the file), and only then are the dirty pages
// written — new overflow pages before the pages that link to them, so an
// interrupted batch strands orphan pages rather than dangling pointers.
// bucket is a bucket index; pairs a concurrent split remapped away from it
// since the caller grouped them are returned in stale for the caller to
// retry (the mapping is stable under the stripe lock, so the filter is
// authoritative). Returns the number of page writes issued.
func (db *DB) putChain(ctx context.Context, bucket uint64, idxs []int, pairs []Pair, created []bool) (writes int, stale []int, err error) {
	st := db.stripeOf(bucket)
	st.mu.Lock()
	defer st.mu.Unlock()
	if db.closed {
		return 0, nil, ErrClosed
	}
	live := idxs
	if db.resizable {
		live = make([]int, 0, len(idxs))
		for _, idx := range idxs {
			if db.bucketOf(pairs[idx].FP) == bucket {
				live = append(live, idx)
			} else {
				stale = append(stale, idx)
			}
		}
		if len(live) == 0 {
			return 0, stale, nil
		}
	}
	if err := db.markDirty(); err != nil {
		return 0, stale, err
	}

	var chain []chainPage
	defer func() {
		for i := range chain {
			putPage(chain[i].buf)
		}
	}()
	// Read the chain, applying in-place updates (in input order) as pages
	// arrive and stopping early once every pair is satisfied — a
	// pure-update group pays only the pages up to its last hit, like the
	// old per-key Put did. A fingerprint appears at most once per chain,
	// so a resolved pair cannot also live on an unread page. Appends need
	// the whole chain (free-slot search + tail link), so reading
	// continues while any pair is unresolved.
	remaining := append(make([]int, 0, len(live)), live...)
	done := ctx.Done()
	for p := db.bucketPageOf(bucket); p != 0 && len(remaining) > 0; {
		if done != nil {
			if err := ctx.Err(); err != nil {
				return 0, stale, err
			}
		}
		buf := getPage()
		if err := db.readPage(p, buf); err != nil {
			putPage(buf)
			return 0, stale, err
		}
		//lint:ignore poolescape chain is a function-local staging slice; every chainPage.buf is released by the putPage loop before putBatch returns.
		chain = append(chain, chainPage{no: p, buf: buf})
		cp := &chain[len(chain)-1]
		n := pageCount(buf)
		for j := 0; j < n && len(remaining) > 0; j++ {
			efp, _ := entryAt(buf, j)
			kept := remaining[:0]
			for _, idx := range remaining {
				if pairs[idx].FP == efp {
					// Later duplicates of one fingerprint overwrite in
					// order; the last value wins, as sequential Puts would.
					setEntryAt(buf, j, efp, pairs[idx].Val)
					cp.dirty = true
					continue
				}
				kept = append(kept, idx)
			}
			remaining = kept
		}
		p = pageNext(buf)
	}
	db.observeChain(len(chain))

	// Apply the still-unresolved pairs against the in-memory chain. A
	// full chain grows by a placeholder page (no=0), so intra-batch
	// duplicates of a fresh fingerprint are found by the same scan that
	// finds on-disk entries.
	var createdCount, newPages int
	for _, idx := range remaining {
		fp, val := pairs[idx].FP, pairs[idx].Val
		if chainUpdate(chain, fp, val) {
			continue
		}
		placed := false
		for i := range chain {
			if n := pageCount(chain[i].buf); n < SlotsPerPage {
				setEntryAt(chain[i].buf, n, fp, val)
				setPageCount(chain[i].buf, n+1)
				chain[i].dirty = true
				placed = true
				break
			}
		}
		if !placed {
			buf := getPage()
			clear(buf)
			setEntryAt(buf, 0, fp, val)
			setPageCount(buf, 1)
			//lint:ignore poolescape chain is a function-local staging slice; every chainPage.buf is released by the putPage loop before putBatch returns.
			chain = append(chain, chainPage{buf: buf, dirty: true})
			newPages++
		}
		created[idx] = true
		createdCount++
	}

	// One allocRun call claims file positions for every new overflow
	// page, reusing freed pages before growing the file.
	if newPages > 0 {
		nos, err := db.allocRun(newPages)
		if err != nil {
			return 0, stale, err
		}
		k := 0
		for i := range chain {
			if chain[i].no == 0 {
				chain[i].no = nos[k]
				k++
			}
		}
		for i := 0; i+1 < len(chain); i++ {
			if pageNext(chain[i].buf) != chain[i+1].no {
				setPageNext(chain[i].buf, chain[i+1].no)
				chain[i].dirty = true
			}
		}
	}

	for i := len(chain) - 1; i >= 0; i-- {
		if !chain[i].dirty {
			continue
		}
		if err := db.writePage(chain[i].no, chain[i].buf); err != nil {
			return writes, stale, err
		}
		writes++
	}
	db.entries.Add(uint64(createdCount))
	db.overflowPages.Add(uint64(newPages))
	return writes, stale, nil
}

// chainUpdate overwrites fp's entry in the in-memory chain, reporting
// whether it was present.
func chainUpdate(chain []chainPage, fp fingerprint.Fingerprint, val Value) bool {
	for i := range chain {
		n := pageCount(chain[i].buf)
		for j := 0; j < n; j++ {
			efp, _ := entryAt(chain[i].buf, j)
			if efp == fp {
				setEntryAt(chain[i].buf, j, fp, val)
				chain[i].dirty = true
				return true
			}
		}
	}
	return false
}

// PutBatch stores every pair. The in-RAM store has no pages to coalesce —
// pagesWritten is one per entry — but writes still overlap across shard
// groups up to parallel.IODepth and each shard lock is taken once per
// group instead of once per pair, mirroring GetBatch. Cancelling ctx stops
// new device writes between entries.
func (s *MemStore) PutBatch(ctx context.Context, pairs []Pair) ([]bool, int, error) {
	created := make([]bool, len(pairs))
	if len(pairs) == 0 {
		return created, 0, nil
	}
	work := groupBy(len(pairs), func(i int) uint64 {
		return pairs[i].FP.Bucket64() & (memShards - 1)
	})
	done := ctx.Done()
	err := parallel.Do(ctx, len(work), parallel.IODepth, func(w int) error {
		idxs := work[w]
		sh := s.shard(pairs[idxs[0]].FP)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		if s.closed {
			return ErrClosed
		}
		for _, idx := range idxs {
			if done != nil {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			s.dev.Write(entrySize)
			_, existed := sh.m[pairs[idx].FP]
			sh.m[pairs[idx].FP] = pairs[idx].Val
			created[idx] = !existed
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return created, len(pairs), nil
}
