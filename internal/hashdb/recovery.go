package hashdb

// This file implements the open-time recovery pass. hashdb's page CRCs
// have always *detected* torn writes and media corruption; before this
// pass existed, a torn page made every Open (and every Get that touched
// it) fail forever. Recovery turns detection into repair:
//
//   - the trailing partial page of a write torn mid-append is truncated;
//   - pages whose CRC no longer matches are quarantined — reset to empty —
//     because their contents cannot be trusted (serving a best-effort
//     parse of a torn page could return garbage locators);
//   - the bucket directory is reconciled with the header's committed
//     linear-hashing state: directory entries beyond it name bucket pages
//     a crash caught mid-split, and those splits are rolled back — their
//     chains are salvaged back through the normal write path under the
//     committed mapping (safe because the split's write order puts every
//     entry in some CRC-valid page at every instant) and their pages
//     erased. Directory damage rolls the state back further the same way;
//   - overflow links that dangle (point past the file, into the bucket
//     region, or into a cycle) are cut. PutBatch's new-pages-before-link
//     write order means a crash strands unreferenced pages rather than
//     dangling pointers, so a dangling link only appears when a page was
//     quarantined or the file lost its tail; cutting it restores a walkable
//     chain;
//   - chains are deduplicated: compaction and splits briefly hold an entry
//     in two pages (new copy written before the old one is erased), so a
//     crash between the two writes leaves a duplicate that Delete could
//     otherwise resurrect. The first copy in chain order wins; duplicates
//     and entries that no longer hash to the chain holding them are
//     packed out;
//   - valid overflow pages left unreachable by a quarantined or cut link
//     are salvaged: their entries hash back to their buckets, so they are
//     re-inserted through the normal write path and the orphan page is
//     zeroed;
//   - the persistent free list is rebuilt from scratch out of every page
//     no chain references — the header's free-list root predates the
//     crash and cannot be trusted not to alias live pages;
//   - the entry, page, and overflow counters are recomputed from the
//     repaired file, and the header is rewritten clean and fsynced.
//
// The pass runs inside Open while the DB is still single-threaded,
// whenever the header says the file was not closed cleanly.

import (
	"errors"
	"fmt"

	"shhc/internal/fingerprint"
)

// RecoveryStats summarizes what the open-time recovery pass found and
// repaired after an unclean shutdown. All counters are zero when the file
// was closed cleanly.
type RecoveryStats struct {
	// Runs counts recovery passes (0 when the file was clean, 1 after an
	// unclean open).
	Runs uint64
	// PagesScanned is the number of data pages the pass CRC-checked.
	PagesScanned uint64
	// TornPages counts pages whose CRC failed; they were quarantined
	// (reset to empty) because torn contents cannot be trusted.
	TornPages uint64
	// TailBytes is the size of a trailing partial page truncated away.
	TailBytes uint64
	// RepairedLinks counts overflow links cut because they pointed past
	// the file, into the bucket region, or into a cycle.
	RepairedLinks uint64
	// OrphanPages counts valid, non-empty overflow pages that were
	// unreachable from any bucket chain (severed by a quarantined page or
	// a cut link).
	OrphanPages uint64
	// SalvagedEntries counts entries re-inserted from orphan pages and
	// rolled-back splits.
	SalvagedEntries uint64
	// SplitRollbacks counts linear-hashing splits a crash caught before
	// their state committed; their bucket chains were salvaged back under
	// the committed mapping.
	SplitRollbacks uint64
	// DroppedEntries counts in-chain duplicates and entries that no
	// longer hashed to the chain holding them, both left by crashes
	// between a copy's write and the original's erase; the reachable
	// first copy survives.
	DroppedEntries uint64
	// FreePagesReclaimed is the size of the free list rebuilt from
	// unreferenced pages.
	FreePagesReclaimed uint64
}

// Recovery returns what the open-time recovery pass repaired. The zero
// value means the file was opened cleanly.
func (db *DB) Recovery() RecoveryStats { return db.recovery }

// zeroPage overwrites page p with zeros. A zero page is the "never
// written" form bucket pages start in: readPage accepts it as valid and
// empty, so quarantining and orphan-clearing both reduce to zeroing.
func (db *DB) zeroPage(p uint64) error {
	buf := getPage()
	defer putPage(buf)
	clear(buf)
	db.dev.Write(PageSize)
	if _, err := db.f.WriteAt(buf, int64(p)*PageSize); err != nil {
		return fmt.Errorf("hashdb: %s: zero page %d: %w", db.path, p, err)
	}
	return nil
}

// readPageChecked is readPage plus the structural invariant that a page
// can never claim more entries than it has slots; a page that does is as
// untrustworthy as a CRC failure and is reported the same way.
func (db *DB) readPageChecked(p uint64, buf []byte) error {
	if err := db.readPage(p, buf); err != nil {
		return err
	}
	if c := pageCount(buf); c > SlotsPerPage {
		return &CorruptionError{Path: db.path, Detail: fmt.Sprintf("page %d count %d exceeds capacity", p, c)}
	}
	return nil
}

// recover repairs the file after an unclean shutdown. It runs
// single-threaded inside Open; see the file comment for the pass's steps.
func (db *DB) recover() error {
	db.recovering = true
	defer func() { db.recovering = false }()
	rs := &db.recovery
	rs.Runs++

	// Discard the pre-crash free list before anything can allocate: pages
	// freed and reallocated around the crash could make the header's root
	// alias live chains, and the salvage Puts below go through allocRun.
	// With the list empty, recovery-time allocations always extend the
	// file; step 6 rebuilds the list from what is truly unreferenced.
	db.allocMu.Lock()
	db.freeHead, db.freeCount = 0, 0
	db.allocMu.Unlock()

	// 1. Resize: drop a torn partial tail page; grow a file truncated
	// below the bucket region back to empty bucket pages.
	fi, err := db.f.Stat()
	if err != nil {
		return fmt.Errorf("hashdb: %s: recover: %w", db.path, err)
	}
	size := fi.Size()
	if rem := size % PageSize; rem != 0 {
		rs.TailBytes = uint64(rem)
		size -= rem
		if err := db.f.Truncate(size); err != nil {
			return fmt.Errorf("hashdb: %s: recover: truncate torn tail: %w", db.path, err)
		}
	}
	pages := uint64(size) / PageSize
	if min := 1 + db.baseBuckets; pages < min {
		if err := db.f.Truncate(int64(min) * PageSize); err != nil {
			return fmt.Errorf("hashdb: %s: recover: restore bucket region: %w", db.path, err)
		}
		pages = min
	}
	db.pages.Store(pages)

	// 2. CRC scan: quarantine torn pages. A quarantined page reads back
	// as valid and empty (next = 0), so later passes see a structurally
	// sound file.
	page := getPage()
	defer putPage(page)
	for p := uint64(1); p < pages; p++ {
		rs.PagesScanned++
		err := db.readPageChecked(p, page)
		if err == nil {
			continue
		}
		var ce *CorruptionError
		if !errors.As(err, &ce) {
			return err // real I/O failure, not corruption
		}
		rs.TornPages++
		if err := db.zeroPage(p); err != nil {
			return err
		}
	}

	// 3. Directory reconciliation. The header's (level, split) state is
	// the committed truth: it says how many directory entries — bucket
	// pages created by splits — exist. Entries beyond it belong to splits
	// the crash caught in flight (the directory slot is written before
	// the split's state publishes) and are rolled back below; missing or
	// damaged entries roll the state itself back, which is always safe in
	// linear hashing because the bucket count moves one split at a time
	// and every rolled-back bucket's entries re-hash into reachable
	// buckets under the earlier mapping.
	committed := int(db.numBuckets() - db.baseBuckets)
	var dirEntries, dirPageNos []uint64
	inDir := make(map[uint64]bool)
	if db.dirHead != 0 && db.dirHead < pages && db.dirHead > db.baseBuckets {
	dirWalk:
		for p := db.dirHead; p != 0; {
			if p >= pages || p <= db.baseBuckets || inDir[p] {
				break
			}
			if err := db.readPage(p, page); err != nil {
				return err
			}
			inDir[p] = true
			dirPageNos = append(dirPageNos, p)
			next := pageNext(page)
			for i := 0; i < dirSlotsPerPage; i++ {
				bp := dirEntryAt(page, i)
				if bp == 0 || bp >= pages || bp <= db.baseBuckets || inDir[bp] {
					break dirWalk
				}
				inDir[bp] = true
				dirEntries = append(dirEntries, bp)
			}
			p = next
		}
	}
	target := min(len(dirEntries), committed)
	extras := dirEntries[target:]
	rs.SplitRollbacks += uint64(len(extras))
	// Re-anchor the in-memory mapping at the reconciled bucket count.
	total := db.baseBuckets + uint64(target)
	var level uint8
	for db.baseBuckets<<(level+1) <= total {
		level++
	}
	db.state.Store(packState(level, total-db.baseBuckets<<level))
	keepDirPages := (target + dirSlotsPerPage - 1) / dirSlotsPerPage
	if target == 0 {
		db.dirHead = 0
		db.dirPages = nil
	} else {
		db.dirPages = dirPageNos[:keepDirPages]
		// Erase the slots beyond the committed entries in the last kept
		// directory page and cut its link, so a stale slot can never be
		// mistaken for an in-flight split by a later recovery after its
		// page has been reused.
		last := db.dirPages[keepDirPages-1]
		if err := db.readPage(last, page); err != nil {
			return err
		}
		for i := target - (keepDirPages-1)*dirSlotsPerPage; i < dirSlotsPerPage; i++ {
			setDirEntryAt(page, i, 0)
		}
		setPageNext(page, 0)
		if err := db.writePage(last, page); err != nil {
			return err
		}
	}
	dirCopy := append([]uint64(nil), dirEntries[:target]...)
	db.dir.Store(&bucketDir{pages: dirCopy, n: target})

	// Collect the rolled-back splits' entries and erase their chains. The
	// salvage Puts run after the recount so the counters stay exact.
	var salvage []Pair
	for _, bp := range extras {
		for p := bp; p != 0; {
			if err := db.readPageChecked(p, page); err != nil {
				return err
			}
			n := pageCount(page)
			for i := 0; i < n; i++ {
				fp, v := entryAt(page, i)
				salvage = append(salvage, Pair{FP: fp, Val: v})
			}
			next := pageNext(page)
			if err := db.zeroPage(p); err != nil {
				return err
			}
			if next >= pages || next <= db.baseBuckets || inDir[next] {
				break
			}
			inDir[next] = true
			p = next
		}
	}
	rs.SalvagedEntries += uint64(len(salvage))

	// 4. Chain walk: recount entries, cut links that dangle, and pack out
	// duplicate or stray entries (see the file comment). reached marks
	// every page owned by some bucket chain or by the directory.
	reached := make([]bool, pages)
	for _, p := range db.dirPages {
		reached[p] = true
	}
	chainSeen := make(map[fingerprint.Fingerprint]struct{})
	var entries, overflow uint64
	nb := db.numBuckets()
	for b := uint64(0); b < nb; b++ {
		head := db.bucketPageOf(b)
		cur := head
		depth := 0
		clear(chainSeen)
		for {
			reached[cur] = true
			if err := db.readPageChecked(cur, page); err != nil {
				return err
			}
			// Drop entries that are duplicates of one already reached in
			// this chain, or that no longer hash to this bucket — both
			// are stale copies a crash left behind mid-compaction or
			// mid-split; keeping them would let a future Delete
			// resurrect the other copy.
			n := pageCount(page)
			w := 0
			for i := 0; i < n; i++ {
				fp, v := entryAt(page, i)
				if _, dup := chainSeen[fp]; dup || db.bucketOf(fp) != b {
					rs.DroppedEntries++
					continue
				}
				chainSeen[fp] = struct{}{}
				if w != i {
					setEntryAt(page, w, fp, v)
				}
				w++
			}
			if w != n {
				setPageCount(page, w)
				if err := db.writePage(cur, page); err != nil {
					return err
				}
			}
			entries += uint64(w)
			if depth > 0 {
				overflow++
			}
			next := pageNext(page)
			if next == 0 {
				break
			}
			if next >= pages || next <= db.baseBuckets || reached[next] {
				// Dangling, into the bucket region, or a cycle: cut.
				setPageNext(page, 0)
				if err := db.writePage(cur, page); err != nil {
					return err
				}
				rs.RepairedLinks++
				break
			}
			cur = next
			depth++
		}
	}
	db.entries.Store(entries)
	db.overflowPages.Store(overflow)

	// 5. Salvage. First the rolled-back splits' entries: re-inserting
	// them under the committed mapping is idempotent — a copy the split's
	// source rewrite never erased is simply overwritten. Then entries on
	// valid pages no chain reaches, which hash back to their buckets the
	// same way; the orphan page is cleared so the free-list rebuild can
	// take it.
	for p := uint64(1); p < pages; p++ {
		if reached[p] {
			continue
		}
		if err := db.readPageChecked(p, page); err != nil {
			return err
		}
		n := pageCount(page)
		if n == 0 {
			continue
		}
		rs.OrphanPages++
		rs.SalvagedEntries += uint64(n)
		for i := 0; i < n; i++ {
			fp, v := entryAt(page, i)
			salvage = append(salvage, Pair{FP: fp, Val: v})
		}
		if err := db.zeroPage(p); err != nil {
			return err
		}
	}
	for _, pr := range salvage {
		if _, err := db.Put(pr.FP, pr.Val); err != nil {
			return fmt.Errorf("hashdb: %s: recover: salvage %s: %w", db.path, pr.FP.Short(), err)
		}
	}

	// 6. Rebuild the free list (emptied at the top of the pass) from every
	// page nothing references. Only the pre-salvage page range is swept:
	// pages the salvage Puts appended are live chain pages, and any page in
	// the old range they touched was already reached (the free list was
	// empty, so their allocations only extended the file).
	for p := pages - 1; p >= 1; p-- {
		if reached[p] {
			continue
		}
		if err := db.freePage(p); err != nil {
			return err
		}
		rs.FreePagesReclaimed++
	}

	// 7. Commit: repairs durable first, then the clean mark (commitClean's
	// two-fsync order), so a crash mid-recovery leaves a dirty header and
	// the next open simply recovers again.
	return db.commitClean()
}

// Check CRC-scans every page and validates the directory, every bucket
// chain, and the free list without modifying anything, returning the
// first inconsistency found (nil means the file is structurally sound).
// It holds every stripe read lock for the duration, which also quiesces
// splits and compaction (both need stripe write locks), so the growth
// state it validates is stable.
func (db *DB) Check() error {
	for i := range db.stripes {
		db.stripes[i].mu.RLock()
	}
	defer func() {
		for i := len(db.stripes) - 1; i >= 0; i-- {
			db.stripes[i].mu.RUnlock()
		}
	}()
	if db.closed {
		return ErrClosed
	}
	pages := db.pages.Load()
	db.allocMu.Lock()
	freeHead, freeCount := db.freeHead, db.freeCount
	db.allocMu.Unlock()
	page := getPage()
	defer putPage(page)
	reached := make([]bool, pages)
	for _, dp := range db.dirPages {
		if dp >= pages || dp <= db.baseBuckets {
			return &CorruptionError{Path: db.path, Detail: fmt.Sprintf("directory page %d out of range", dp)}
		}
		reached[dp] = true
	}
	nb := db.numBuckets()
	for b := uint64(0); b < nb; b++ {
		head := db.bucketPageOf(b)
		if head == 0 || head >= pages || (b >= db.baseBuckets && head <= db.baseBuckets) {
			return &CorruptionError{Path: db.path, Detail: fmt.Sprintf("bucket %d head page %d out of range", b, head)}
		}
		if b >= db.baseBuckets && reached[head] {
			return &CorruptionError{Path: db.path, Detail: fmt.Sprintf("bucket %d head page %d shared", b, head)}
		}
		for p := head; p != 0; {
			reached[p] = true
			if err := db.readPageChecked(p, page); err != nil {
				return err
			}
			next := pageNext(page)
			if next != 0 && (next >= pages || next <= db.baseBuckets || reached[next]) {
				return &CorruptionError{Path: db.path, Detail: fmt.Sprintf("page %d links to invalid page %d", p, next)}
			}
			p = next
		}
	}
	var free uint64
	for p := freeHead; p != 0; {
		if p >= pages || p <= db.baseBuckets || reached[p] {
			return &CorruptionError{Path: db.path, Detail: fmt.Sprintf("free list reaches invalid page %d", p)}
		}
		reached[p] = true
		if err := db.readPageChecked(p, page); err != nil {
			return err
		}
		if pageCount(page) != 0 {
			return &CorruptionError{Path: db.path, Detail: fmt.Sprintf("free page %d is not empty", p)}
		}
		free++
		p = pageNext(page)
	}
	if free != freeCount {
		return &CorruptionError{Path: db.path, Detail: fmt.Sprintf("free list holds %d pages, header says %d", free, freeCount)}
	}
	// Unreferenced pages (strandable by a cancelled batch) just need to
	// be readable.
	for p := uint64(1); p < pages; p++ {
		if reached[p] {
			continue
		}
		if err := db.readPageChecked(p, page); err != nil {
			return err
		}
	}
	return nil
}
