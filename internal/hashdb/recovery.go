package hashdb

// This file implements the open-time recovery pass. hashdb's page CRCs
// have always *detected* torn writes and media corruption; before this
// pass existed, a torn page made every Open (and every Get that touched
// it) fail forever. Recovery turns detection into repair:
//
//   - the trailing partial page of a write torn mid-append is truncated;
//   - pages whose CRC no longer matches are quarantined — reset to empty —
//     because their contents cannot be trusted (serving a best-effort
//     parse of a torn page could return garbage locators);
//   - overflow links that dangle (point past the file, into the bucket
//     region, or into a cycle) are cut. PutBatch's new-pages-before-link
//     write order means a crash strands unreferenced pages rather than
//     dangling pointers, so a dangling link only appears when a page was
//     quarantined or the file lost its tail; cutting it restores a walkable
//     chain;
//   - valid overflow pages left unreachable by a quarantined or cut link
//     are salvaged: their entries hash back to their buckets, so they are
//     re-inserted through the normal write path and the orphan page is
//     zeroed;
//   - the entry, page, and overflow counters are recomputed from the
//     repaired file, and the header is rewritten clean and fsynced.
//
// The pass runs inside Open while the DB is still single-threaded,
// whenever the header says the file was not closed cleanly.

import (
	"errors"
	"fmt"
)

// RecoveryStats summarizes what the open-time recovery pass found and
// repaired after an unclean shutdown. All counters are zero when the file
// was closed cleanly.
type RecoveryStats struct {
	// Runs counts recovery passes (0 when the file was clean, 1 after an
	// unclean open).
	Runs uint64
	// PagesScanned is the number of data pages the pass CRC-checked.
	PagesScanned uint64
	// TornPages counts pages whose CRC failed; they were quarantined
	// (reset to empty) because torn contents cannot be trusted.
	TornPages uint64
	// TailBytes is the size of a trailing partial page truncated away.
	TailBytes uint64
	// RepairedLinks counts overflow links cut because they pointed past
	// the file, into the bucket region, or into a cycle.
	RepairedLinks uint64
	// OrphanPages counts valid, non-empty overflow pages that were
	// unreachable from any bucket chain (severed by a quarantined page or
	// a cut link).
	OrphanPages uint64
	// SalvagedEntries counts entries re-inserted from orphan pages.
	SalvagedEntries uint64
}

// Recovery returns what the open-time recovery pass repaired. The zero
// value means the file was opened cleanly.
func (db *DB) Recovery() RecoveryStats { return db.recovery }

// zeroPage overwrites page p with zeros. A zero page is the "never
// written" form bucket pages start in: readPage accepts it as valid and
// empty, so quarantining and orphan-clearing both reduce to zeroing.
func (db *DB) zeroPage(p uint64) error {
	buf := getPage()
	defer putPage(buf)
	clear(buf)
	db.dev.Write(PageSize)
	if _, err := db.f.WriteAt(buf, int64(p)*PageSize); err != nil {
		return fmt.Errorf("hashdb: %s: zero page %d: %w", db.path, p, err)
	}
	return nil
}

// readPageChecked is readPage plus the structural invariant that a page
// can never claim more entries than it has slots; a page that does is as
// untrustworthy as a CRC failure and is reported the same way.
func (db *DB) readPageChecked(p uint64, buf []byte) error {
	if err := db.readPage(p, buf); err != nil {
		return err
	}
	if c := pageCount(buf); c > SlotsPerPage {
		return &CorruptionError{Path: db.path, Detail: fmt.Sprintf("page %d count %d exceeds capacity", p, c)}
	}
	return nil
}

// recover repairs the file after an unclean shutdown. It runs
// single-threaded inside Open; see the file comment for the pass's steps.
func (db *DB) recover() error {
	rs := &db.recovery
	rs.Runs++

	// 1. Resize: drop a torn partial tail page; grow a file truncated
	// below the bucket region back to empty bucket pages.
	fi, err := db.f.Stat()
	if err != nil {
		return fmt.Errorf("hashdb: %s: recover: %w", db.path, err)
	}
	size := fi.Size()
	if rem := size % PageSize; rem != 0 {
		rs.TailBytes = uint64(rem)
		size -= rem
		if err := db.f.Truncate(size); err != nil {
			return fmt.Errorf("hashdb: %s: recover: truncate torn tail: %w", db.path, err)
		}
	}
	pages := uint64(size) / PageSize
	if min := 1 + db.buckets; pages < min {
		if err := db.f.Truncate(int64(min) * PageSize); err != nil {
			return fmt.Errorf("hashdb: %s: recover: restore bucket region: %w", db.path, err)
		}
		pages = min
	}
	db.pages.Store(pages)

	// 2. CRC scan: quarantine torn pages. A quarantined page reads back
	// as valid and empty (next = 0), so later passes see a structurally
	// sound file.
	page := getPage()
	defer putPage(page)
	for p := uint64(1); p < pages; p++ {
		rs.PagesScanned++
		err := db.readPageChecked(p, page)
		if err == nil {
			continue
		}
		var ce *CorruptionError
		if !errors.As(err, &ce) {
			return err // real I/O failure, not corruption
		}
		rs.TornPages++
		if err := db.zeroPage(p); err != nil {
			return err
		}
	}

	// 3. Chain walk: recount entries and cut links that dangle. reached
	// marks every page owned by some bucket chain.
	reached := make([]bool, pages)
	var entries, overflow uint64
	for b := uint64(1); b <= db.buckets; b++ {
		reached[b] = true
		if err := db.readPageChecked(b, page); err != nil {
			return err
		}
		entries += uint64(pageCount(page))
		cur := b
		for {
			next := pageNext(page)
			if next == 0 {
				break
			}
			if next >= pages || next <= db.buckets || reached[next] {
				// Dangling, into the bucket region, or a cycle: cut.
				setPageNext(page, 0)
				if err := db.writePage(cur, page); err != nil {
					return err
				}
				rs.RepairedLinks++
				break
			}
			reached[next] = true
			if err := db.readPageChecked(next, page); err != nil {
				return err
			}
			entries += uint64(pageCount(page))
			overflow++
			cur = next
		}
	}
	db.entries.Store(entries)
	db.overflowPages.Store(overflow)

	// 4. Salvage: entries on valid overflow pages no chain reaches hash
	// back to their buckets, so re-insert them through the normal write
	// path and clear the orphan page (Range walks pages physically and
	// must not see them twice).
	var salvage []Pair
	for p := db.buckets + 1; p < pages; p++ {
		if reached[p] {
			continue
		}
		if err := db.readPageChecked(p, page); err != nil {
			return err
		}
		n := pageCount(page)
		if n == 0 {
			continue
		}
		rs.OrphanPages++
		rs.SalvagedEntries += uint64(n)
		for i := 0; i < n; i++ {
			fp, v := entryAt(page, i)
			salvage = append(salvage, Pair{FP: fp, Val: v})
		}
		if err := db.zeroPage(p); err != nil {
			return err
		}
	}
	for _, pr := range salvage {
		if _, err := db.Put(pr.FP, pr.Val); err != nil {
			return fmt.Errorf("hashdb: %s: recover: salvage %s: %w", db.path, pr.FP.Short(), err)
		}
	}

	// 5. Commit: repairs durable first, then the clean mark (commitClean's
	// two-fsync order), so a crash mid-recovery leaves a dirty header and
	// the next open simply recovers again.
	return db.commitClean()
}

// Check CRC-scans every page and validates chain structure without
// modifying anything, returning the first inconsistency found (nil means
// the file is structurally sound). It holds every stripe read lock for the
// duration, like Range.
func (db *DB) Check() error {
	for i := range db.stripes {
		db.stripes[i].mu.RLock()
	}
	defer func() {
		for i := len(db.stripes) - 1; i >= 0; i-- {
			db.stripes[i].mu.RUnlock()
		}
	}()
	if db.closed {
		return ErrClosed
	}
	pages := db.pages.Load()
	page := getPage()
	defer putPage(page)
	for p := uint64(1); p < pages; p++ {
		if err := db.readPageChecked(p, page); err != nil {
			return err
		}
		if next := pageNext(page); next != 0 && (next >= pages || next <= db.buckets) {
			return &CorruptionError{Path: db.path, Detail: fmt.Sprintf("page %d links to invalid page %d", p, next)}
		}
	}
	return nil
}
