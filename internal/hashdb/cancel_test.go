package hashdb

import (
	"context"
	"errors"
	"testing"
	"time"

	"shhc/internal/device"
	"shhc/internal/fingerprint"
)

// TestCancelGetBatchStopsDeviceReads: a context that expires mid-batch
// stops the store from issuing further device reads — reads in flight
// complete, the rest are abandoned — and the batch fails with the
// context's error.
func TestCancelGetBatchStopsDeviceReads(t *testing.T) {
	for _, tc := range []struct {
		name  string
		store func(*device.Device) Store
	}{
		{"mem", func(d *device.Device) Store { return NewMemStore(d) }},
		{"db", func(d *device.Device) Store {
			db, err := Create(t.TempDir()+"/cancel.shdb", Options{ExpectedItems: 1 << 12, Device: d})
			if err != nil {
				t.Fatalf("Create: %v", err)
			}
			return db
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dev := device.New(device.Model{Name: "slow", ReadBase: 10 * time.Millisecond}, device.Sleep)
			s := tc.store(dev)
			defer s.Close()
			bg := s.(BatchGetter)

			const batch = 512
			fps := make([]fingerprint.Fingerprint, batch)
			for i := range fps {
				fps[i] = fingerprint.FromUint64(uint64(i))
			}

			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
			defer cancel()
			start := time.Now()
			_, _, err := bg.GetBatch(ctx, fps)
			elapsed := time.Since(start)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("cancelled GetBatch = %v, want context.DeadlineExceeded", err)
			}
			// 512 probes at 10ms over 16-way parallelism is >300ms of
			// modeled sleep; the 20ms deadline must abandon most of it.
			if elapsed > 250*time.Millisecond {
				t.Fatalf("cancelled GetBatch took %v; device reads were not abandoned", elapsed)
			}

			// The store remains usable.
			if _, _, err := bg.GetBatch(context.Background(), fps[:4]); err != nil {
				t.Fatalf("GetBatch after cancellation: %v", err)
			}
		})
	}
}

// TestCancelGetBatchAlreadyExpired: an already-dead context issues no
// device reads at all.
func TestCancelGetBatchAlreadyExpired(t *testing.T) {
	dev := device.New(device.Model{Name: "slow", ReadBase: time.Millisecond}, device.Account)
	s := NewMemStore(dev)
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fps := []fingerprint.Fingerprint{fingerprint.FromUint64(1), fingerprint.FromUint64(2)}
	if _, _, err := s.GetBatch(ctx, fps); !errors.Is(err, context.Canceled) {
		t.Fatalf("expired GetBatch = %v, want context.Canceled", err)
	}
	if reads := dev.Stats().Reads; reads != 0 {
		t.Fatalf("expired GetBatch issued %d device reads, want 0", reads)
	}
}
