package hashdb

import (
	"context"

	"shhc/internal/fingerprint"
	"shhc/internal/parallel"
)

// BatchGetter is implemented by stores whose point probes can be coalesced
// into one batched read. The hybrid node's asynchronous SSD phase uses it
// to pay one device charge per bucket page instead of one per fingerprint,
// and to overlap page reads up to the device's internal parallelism.
type BatchGetter interface {
	// GetBatch looks up every fingerprint, returning values and found
	// flags in input order. A lookup error fails the whole batch. A
	// cancelled ctx stops the batch from issuing further device reads
	// (reads already issued complete) and fails it with ctx.Err().
	GetBatch(ctx context.Context, fps []fingerprint.Fingerprint) ([]Value, []bool, error)
}

var (
	_ BatchGetter = (*DB)(nil)
	_ BatchGetter = (*MemStore)(nil)
)

// groupBy partitions item indices by a shard key (bucket page for the
// on-disk table, map shard for the in-RAM store), returning the groups as
// a slice the worker pool can pull from. Within a group, indices keep
// input order, which is what gives batched writes their in-order duplicate
// semantics.
func groupBy(n int, keyOf func(int) uint64) [][]int {
	groups := make(map[uint64][]int, n)
	for i := 0; i < n; i++ {
		k := keyOf(i)
		groups[k] = append(groups[k], i)
	}
	work := make([][]int, 0, len(groups))
	for _, idxs := range groups {
		work = append(work, idxs)
	}
	return work
}

// GetBatch looks up every fingerprint, reading each distinct bucket page
// once. Probes are grouped by bucket page; each group walks its bucket
// chain under the owning stripe's read lock, scanning one pooled page
// buffer for all of the group's fingerprints. Groups run concurrently up
// to parallel.IODepth, so modeled (Sleep-mode) devices overlap reads the
// way real flash channels do. Results are positionally aligned with fps;
// duplicate fingerprints in the input each get the same answer at the cost
// of no extra I/O. Cancelling ctx stops new page reads between groups and
// between chain pages.
func (db *DB) GetBatch(ctx context.Context, fps []fingerprint.Fingerprint) ([]Value, []bool, error) {
	vals := make([]Value, len(fps))
	found := make([]bool, len(fps))
	if len(fps) == 0 {
		return vals, found, nil
	}
	work := groupBy(len(fps), func(i int) uint64 { return db.bucketPage(fps[i]) })
	err := parallel.Do(ctx, len(work), parallel.IODepth, func(w int) error {
		idxs := work[w]
		return db.getChain(ctx, db.bucketPage(fps[idxs[0]]), idxs, fps, vals, found)
	})
	if err != nil {
		return nil, nil, err
	}
	return vals, found, nil
}

// getChain walks one bucket chain, resolving every probe index in idxs.
// Each chain page is read exactly once and scanned for all still-missing
// fingerprints of the group.
func (db *DB) getChain(ctx context.Context, bucket uint64, idxs []int, fps []fingerprint.Fingerprint, vals []Value, found []bool) error {
	st := &db.stripes[(bucket-1)&db.stripeMask]
	st.mu.RLock()
	defer st.mu.RUnlock()
	if db.closed {
		return ErrClosed
	}
	done := ctx.Done()
	page := getPage()
	defer putPage(page)
	remaining := len(idxs)
	for p := bucket; p != 0 && remaining > 0; {
		if done != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if err := db.readPage(p, page); err != nil {
			return err
		}
		n := pageCount(page)
		for i := 0; i < n && remaining > 0; i++ {
			efp, v := entryAt(page, i)
			for _, idx := range idxs {
				if !found[idx] && fps[idx] == efp {
					vals[idx] = v
					found[idx] = true
					remaining--
				}
			}
		}
		p = pageNext(page)
	}
	return nil
}

// GetBatch looks up every fingerprint. The in-RAM store has no pages to
// coalesce, but probes still overlap across shard groups up to
// parallel.IODepth so a MemStore charged to a Sleep-mode device exposes
// the same device parallelism as the on-disk table — this is what keeps
// MemStore an honest stand-in for the SSD hash table in simulations.
// Cancelling ctx stops new device reads between probes.
func (s *MemStore) GetBatch(ctx context.Context, fps []fingerprint.Fingerprint) ([]Value, []bool, error) {
	vals := make([]Value, len(fps))
	found := make([]bool, len(fps))
	if len(fps) == 0 {
		return vals, found, nil
	}
	work := groupBy(len(fps), func(i int) uint64 {
		return fps[i].Bucket64() & (memShards - 1)
	})
	done := ctx.Done()
	err := parallel.Do(ctx, len(work), parallel.IODepth, func(w int) error {
		idxs := work[w]
		sh := s.shard(fps[idxs[0]])
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		if s.closed {
			return ErrClosed
		}
		for _, idx := range idxs {
			if done != nil {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			s.dev.Read(entrySize)
			v, ok := sh.m[fps[idx]]
			vals[idx] = v
			found[idx] = ok
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return vals, found, nil
}
