package hashdb

import (
	"context"
	"sync"

	"shhc/internal/fingerprint"
	"shhc/internal/parallel"
)

// BatchGetter is implemented by stores whose point probes can be coalesced
// into one batched read. The hybrid node's asynchronous SSD phase uses it
// to pay one device charge per bucket page instead of one per fingerprint,
// and to overlap page reads up to the device's internal parallelism.
type BatchGetter interface {
	// GetBatch looks up every fingerprint, returning values and found
	// flags in input order. A lookup error fails the whole batch. A
	// cancelled ctx stops the batch from issuing further device reads
	// (reads already issued complete) and fails it with ctx.Err().
	GetBatch(ctx context.Context, fps []fingerprint.Fingerprint) ([]Value, []bool, error)
}

var (
	_ BatchGetter = (*DB)(nil)
	_ BatchGetter = (*MemStore)(nil)
)

// groupBy partitions item indices by a shard key (bucket page for the
// on-disk table, map shard for the in-RAM store), returning the groups as
// a slice the worker pool can pull from. Within a group, indices keep
// input order, which is what gives batched writes their in-order duplicate
// semantics.
func groupBy(n int, keyOf func(int) uint64) [][]int {
	groups := make(map[uint64][]int, n)
	for i := 0; i < n; i++ {
		k := keyOf(i)
		groups[k] = append(groups[k], i)
	}
	work := make([][]int, 0, len(groups))
	for _, idxs := range groups {
		work = append(work, idxs)
	}
	return work
}

// groupIdxBy is groupBy over an explicit index set: the retry rounds of a
// batch regroup only the indices a concurrent bucket split displaced.
// Relative input order is preserved within each group.
func groupIdxBy(idxs []int, keyOf func(int) uint64) [][]int {
	groups := make(map[uint64][]int, len(idxs))
	for _, i := range idxs {
		k := keyOf(i)
		groups[k] = append(groups[k], i)
	}
	work := make([][]int, 0, len(groups))
	for _, g := range groups {
		work = append(work, g)
	}
	return work
}

// GetBatch looks up every fingerprint, reading each distinct bucket page
// once. Probes are grouped by bucket page; each group walks its bucket
// chain under the owning stripe's read lock, scanning one pooled page
// buffer for all of the group's fingerprints. Groups run concurrently up
// to parallel.IODepth, so modeled (Sleep-mode) devices overlap reads the
// way real flash channels do. Results are positionally aligned with fps;
// duplicate fingerprints in the input each get the same answer at the cost
// of no extra I/O. Cancelling ctx stops new page reads between groups and
// between chain pages.
func (db *DB) GetBatch(ctx context.Context, fps []fingerprint.Fingerprint) ([]Value, []bool, error) {
	vals := make([]Value, len(fps))
	found := make([]bool, len(fps))
	if len(fps) == 0 {
		return vals, found, nil
	}
	pending := make([]int, len(fps))
	for i := range pending {
		pending[i] = i
	}
	// A concurrent linear-hashing split can remap probes between the
	// lock-free grouping and the stripe lock; getChain reports those back
	// and the batch regroups and retries them (see PutBatch).
	for len(pending) > 0 {
		work := groupIdxBy(pending, func(i int) uint64 { return db.bucketOf(fps[i]) })
		var staleMu sync.Mutex
		var stale []int
		err := parallel.Do(ctx, len(work), parallel.IODepth, func(w int) error {
			idxs := work[w]
			st, err := db.getChain(ctx, db.bucketOf(fps[idxs[0]]), idxs, fps, vals, found)
			if len(st) > 0 {
				staleMu.Lock()
				stale = append(stale, st...)
				staleMu.Unlock()
			}
			return err
		})
		if err != nil {
			return nil, nil, err
		}
		pending = stale
	}
	return vals, found, nil
}

// getChain walks one bucket chain, resolving every probe index in idxs.
// Each chain page is read exactly once and scanned for all still-missing
// fingerprints of the group. Probes a concurrent split remapped away from
// bucket are returned in stale for the caller to retry.
func (db *DB) getChain(ctx context.Context, bucket uint64, idxs []int, fps []fingerprint.Fingerprint, vals []Value, found []bool) (stale []int, err error) {
	st := db.stripeOf(bucket)
	st.mu.RLock()
	defer st.mu.RUnlock()
	if db.closed {
		return nil, ErrClosed
	}
	live := idxs
	if db.resizable {
		live = make([]int, 0, len(idxs))
		for _, idx := range idxs {
			if db.bucketOf(fps[idx]) == bucket {
				live = append(live, idx)
			} else {
				stale = append(stale, idx)
			}
		}
		if len(live) == 0 {
			return stale, nil
		}
	}
	done := ctx.Done()
	page := getPage()
	defer putPage(page)
	remaining := len(live)
	for p := db.bucketPageOf(bucket); p != 0 && remaining > 0; {
		if done != nil {
			if err := ctx.Err(); err != nil {
				return stale, err
			}
		}
		if err := db.readPage(p, page); err != nil {
			return stale, err
		}
		n := pageCount(page)
		for i := 0; i < n && remaining > 0; i++ {
			efp, v := entryAt(page, i)
			for _, idx := range live {
				if !found[idx] && fps[idx] == efp {
					vals[idx] = v
					found[idx] = true
					remaining--
				}
			}
		}
		p = pageNext(page)
	}
	return stale, nil
}

// GetBatch looks up every fingerprint. The in-RAM store has no pages to
// coalesce, but probes still overlap across shard groups up to
// parallel.IODepth so a MemStore charged to a Sleep-mode device exposes
// the same device parallelism as the on-disk table — this is what keeps
// MemStore an honest stand-in for the SSD hash table in simulations.
// Cancelling ctx stops new device reads between probes.
func (s *MemStore) GetBatch(ctx context.Context, fps []fingerprint.Fingerprint) ([]Value, []bool, error) {
	vals := make([]Value, len(fps))
	found := make([]bool, len(fps))
	if len(fps) == 0 {
		return vals, found, nil
	}
	work := groupBy(len(fps), func(i int) uint64 {
		return fps[i].Bucket64() & (memShards - 1)
	})
	done := ctx.Done()
	err := parallel.Do(ctx, len(work), parallel.IODepth, func(w int) error {
		idxs := work[w]
		sh := s.shard(fps[idxs[0]])
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		if s.closed {
			return ErrClosed
		}
		for _, idx := range idxs {
			if done != nil {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			s.dev.Read(entrySize)
			v, ok := sh.m[fps[idx]]
			vals[idx] = v
			found[idx] = ok
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return vals, found, nil
}
