package hashdb

// This file implements online growth: incremental linear-hashing bucket
// splits, the persistent page free list, and the compaction pass that
// feeds it.
//
// The static geometry the store launched with — bucket count fixed at
// create time — is a latent scalability bug: past the ExpectedItems
// estimate every bucket chain grows without bound and each lookup pays
// one page read per chain page forever. Linear hashing removes the
// ceiling without downtime or a rebuild:
//
//   - the table runs at a (level, split) state: base<<level buckets are
//     addressed at the current level and the buckets below the split
//     pointer have already been rehashed one level deeper;
//   - a split takes the bucket at the split pointer, rehashes its chain
//     one level deeper, and moves the entries whose hash gained the new
//     top bit into a freshly allocated bucket at index split+base<<level;
//   - splits are incremental — one bucket at a time, under the two
//     affected bucket-region stripe locks — and are triggered by the live
//     telemetry the write path already records (load factor and observed
//     chain length), not by an offline rebuild.
//
// Bucket pages beyond the base region cannot live at a fixed file offset,
// so they are recorded in a small directory: a chain of pages holding
// 8-byte page numbers, rooted at the v4 header's dirHead field. The
// in-memory mirror (bucketDir) is published with an atomic pointer so the
// read path resolves bucket→page with two atomic loads and no lock.
//
// Crash safety rides the existing dirty-mark + recovery design rather
// than per-split fsyncs. The on-disk header only advances at clean
// commits, so a crash mid-split (or any time before the next Sync) is
// rolled back by recovery: directory entries beyond the header's
// (level, split) state name bucket pages that were still in flight, and
// their entries are salvaged back through the normal write path — the
// split's write order (new bucket pages first, then the directory
// append, then the source-chain rewrite) guarantees every entry is in
// some CRC-valid page at every instant. See recovery.go.

import (
	"encoding/binary"
	"fmt"

	"shhc/internal/fingerprint"
)

// splitState packs the linear-hashing position into one atomic word:
// level in the top 8 bits, split pointer in the low 56. A single load
// gives readers a coherent (level, split) pair.
const splitBits = 56

func packState(level uint8, split uint64) uint64 {
	return uint64(level)<<splitBits | split
}

func unpackState(s uint64) (level uint8, split uint64) {
	return uint8(s >> splitBits), s & (1<<splitBits - 1)
}

// bucketDir is the published bucket directory: pages[i] is the bucket
// page of bucket baseBuckets+i, valid for i < n. Appends write the slot
// at index n (never read by holders of an older snapshot) and publish a
// new header, doubling the backing array only when it fills, so readers
// index it lock-free while splits extend it.
type bucketDir struct {
	pages []uint64
	n     int
}

// dirSlotsPerPage is the number of 8-byte page numbers one directory
// page holds after the standard page header. Directory pages reuse the
// CRC and next fields but leave count at 0: how many slots are live is
// derived from the header's committed (level, split) state, so a
// directory page never claims entries a crash could make recovery (or
// orphan salvage) misread as fingerprint records.
const dirSlotsPerPage = (PageSize - pageHdrSize) / 8

func dirEntryAt(page []byte, i int) uint64 {
	return binary.BigEndian.Uint64(page[pageHdrSize+i*8:])
}

func setDirEntryAt(page []byte, i int, p uint64) {
	binary.BigEndian.PutUint64(page[pageHdrSize+i*8:], p)
}

// levelBuckets returns base<<level, the number of buckets addressed at
// the current level.
func (db *DB) levelBuckets(level uint8) uint64 {
	return db.baseBuckets << level
}

// numBuckets returns the current total bucket count (base<<level plus
// the buckets already split off this level).
func (db *DB) numBuckets() uint64 {
	level, split := unpackState(db.state.Load())
	return db.levelBuckets(level) + split
}

// bucketOf maps a fingerprint to its current bucket index under the
// linear-hashing state: hash at the current level, and one level deeper
// for buckets the split pointer has already passed.
func (db *DB) bucketOf(fp fingerprint.Fingerprint) uint64 {
	return db.bucketOfHash(fp.Prefix64())
}

func (db *DB) bucketOfHash(h uint64) uint64 {
	level, split := unpackState(db.state.Load())
	n := db.levelBuckets(level)
	b := h % n
	if b < split {
		b = h % (n << 1)
	}
	return b
}

// bucketPageOf returns the file page holding bucket b's head. Base
// buckets sit at their create-time offsets; later buckets resolve
// through the directory snapshot.
func (db *DB) bucketPageOf(b uint64) uint64 {
	if b < db.baseBuckets {
		return 1 + b
	}
	d := db.dir.Load()
	return d.pages[b-db.baseBuckets]
}

// stripeOf returns the lock stripe owning bucket b's chain.
func (db *DB) stripeOf(b uint64) *dbStripe {
	return &db.stripes[b&db.stripeMask]
}

// rlockBucket read-locks the stripe owning fp's bucket, rechecking the
// mapping after acquiring the lock: a split that moved fp's bucket while
// we were blocked is detected and the lock retaken on the new stripe.
// The mapping is stable while the stripe lock is held, because a split
// changing it must write-lock this same stripe.
func (db *DB) rlockBucket(h uint64) (uint64, *dbStripe) {
	for {
		b := db.bucketOfHash(h)
		st := db.stripeOf(b)
		st.mu.RLock()
		if db.bucketOfHash(h) == b {
			return b, st
		}
		st.mu.RUnlock()
	}
}

// lockBucket is rlockBucket's write-lock twin.
func (db *DB) lockBucket(h uint64) (uint64, *dbStripe) {
	for {
		b := db.bucketOfHash(h)
		st := db.stripeOf(b)
		st.mu.Lock()
		if db.bucketOfHash(h) == b {
			return b, st
		}
		st.mu.Unlock()
	}
}

// ---- page allocation and the persistent free list ----
//
// Freed pages (emptied overflow pages unlinked by Delete, split, or
// Compact) chain through their pageNext field, rooted at freeHead. The
// chain is maintained eagerly on disk: freeing writes the page as empty
// with next = old head, so the on-disk chain rooted at the in-memory
// head is intact at every instant and a clean header commit simply
// records the head. Recovery never trusts the chain after a crash — it
// rebuilds the free list from the unreferenced empty pages it finds.

// allocRun claims n page numbers, draining the free list before
// extending the file. Free-list pops cost one page read each (to follow
// the chain); extension is a counter bump, with the actual growth
// happening when the new page is written. Callers must have marked the
// file dirty.
func (db *DB) allocRun(n int) ([]uint64, error) {
	db.allocMu.Lock()
	defer db.allocMu.Unlock()
	pages := make([]uint64, 0, n)
	if db.freeHead != 0 {
		buf := getPage()
		defer putPage(buf)
		for len(pages) < n && db.freeHead != 0 {
			p := db.freeHead
			if err := db.readPage(p, buf); err != nil {
				return nil, err
			}
			db.freeHead = pageNext(buf)
			db.freeCount--
			pages = append(pages, p)
		}
	}
	if rest := n - len(pages); rest > 0 {
		base := db.pages.Load()
		db.pages.Add(uint64(rest))
		for i := 0; i < rest; i++ {
			pages = append(pages, base+uint64(i))
		}
	}
	return pages, nil
}

// freePage pushes p onto the free list, overwriting it as an empty page
// whose next field links the previous head. The page's prior contents
// must already be dead (unlinked from every chain): the write both
// erases them and publishes the chain link in one page write.
func (db *DB) freePage(p uint64) error {
	buf := getPage()
	defer putPage(buf)
	clear(buf)
	db.allocMu.Lock()
	defer db.allocMu.Unlock()
	setPageNext(buf, db.freeHead)
	if err := db.writePage(p, buf); err != nil {
		return err
	}
	db.freeHead = p
	db.freeCount++
	return nil
}

// ---- directory maintenance ----

// dirAppend records newPage as the bucket page of the next directory
// bucket, writing the directory page that holds the slot (allocating and
// linking a fresh directory page when the last one is full). Caller
// holds splitMu; the in-memory snapshot is NOT published here — the
// caller publishes dir and split state together once the split's data
// movement is complete, so a failed split leaves only a stale on-disk
// slot that the next split overwrites and recovery ignores.
func (db *DB) dirAppend(newPage uint64) error {
	d := db.dir.Load()
	idx := d.n // committed entries; on-disk counts beyond this are stale
	slot := idx % dirSlotsPerPage
	pageIdx := idx / dirSlotsPerPage
	buf := getPage()
	defer putPage(buf)
	if slot == 0 && pageIdx == len(db.dirPages) {
		// The last directory page is full (or none exists): start a new
		// one, then link it — new page before the pointer to it, so a
		// crash strands an unreferenced page, never a dangling link.
		np, err := db.allocRun(1)
		if err != nil {
			return err
		}
		clear(buf)
		setDirEntryAt(buf, 0, newPage)
		if err := db.writePage(np[0], buf); err != nil {
			return err
		}
		if pageIdx == 0 {
			db.allocMu.Lock()
			db.dirHead = np[0]
			db.allocMu.Unlock()
		} else {
			last := db.dirPages[pageIdx-1]
			if err := db.readPage(last, buf); err != nil {
				return err
			}
			setPageNext(buf, np[0])
			if err := db.writePage(last, buf); err != nil {
				return err
			}
		}
		db.dirPages = append(db.dirPages, np[0])
		return nil
	}
	dp := db.dirPages[pageIdx]
	if err := db.readPage(dp, buf); err != nil {
		return err
	}
	setDirEntryAt(buf, slot, newPage)
	return db.writePage(dp, buf)
}

// publishDirEntry extends the in-memory directory snapshot with
// newPage. Slot idx d.n is written before the new header is published,
// and holders of the old header never index past their n, so readers
// race-free against the append. Caller holds splitMu.
func (db *DB) publishDirEntry(newPage uint64) {
	d := db.dir.Load()
	pages := d.pages
	if d.n == len(pages) {
		grown := make([]uint64, max(16, len(pages)*2))
		copy(grown, pages)
		pages = grown
	}
	pages[d.n] = newPage
	db.dir.Store(&bucketDir{pages: pages, n: d.n + 1})
}

// ---- split triggering and execution ----

// chainSplitTrigger is the observed chain length (pages) at which the
// write path requests a split regardless of aggregate load factor: a
// chain this deep means lookups in that region pay multiple device
// reads.
const chainSplitTrigger = 3

// loadFactor returns entries / total bucket-region slots at the current
// bucket count.
func (db *DB) loadFactor() float64 {
	nb := db.numBuckets()
	if nb == 0 {
		return 0
	}
	return float64(db.entries.Load()) / float64(nb*SlotsPerPage)
}

// maybeSplit runs pending incremental splits if the live telemetry says
// the table has outgrown its bucket count: the aggregate load factor
// crossed the split threshold, or a write-path chain walk observed a
// chain of chainSplitTrigger+ pages. At most one caller splits at a
// time (TryLock); everyone else returns immediately, so the trigger
// never convoys the write path. Callers must not hold stripe locks.
func (db *DB) maybeSplit() error {
	if !db.resizable || db.recovering {
		return nil
	}
	want := db.wantSplit.Load()
	if !want && db.loadFactor() < db.splitLF {
		return nil
	}
	if !db.splitMu.TryLock() {
		return nil
	}
	defer db.splitMu.Unlock()
	if db.wantSplit.Swap(false) {
		if err := db.splitOne(); err != nil {
			return err
		}
	}
	for db.loadFactor() >= db.splitLF {
		if err := db.splitOne(); err != nil {
			return err
		}
	}
	return nil
}

// splitOne performs one linear-hashing split: the bucket at the split
// pointer is rehashed one level deeper and the entries whose hash gained
// the new top bit move to a freshly allocated bucket. Caller holds
// splitMu.
//
// The write order is the crash-safety argument (recovery rolls the split
// back whenever the header's committed state predates it):
//
//  1. the new bucket's pages, deepest first — moved entries now exist
//     twice (old chain and new), which is safe: the new bucket is
//     unreachable until the state publishes, and recovery salvages it
//     back through idempotent Puts;
//  2. the directory slot naming the new bucket page;
//  3. the source chain rewritten in place, moved entries removed —
//     page-local edits only, so no entry ever depends on another
//     source-page write landing;
//  4. emptied source overflow pages unlinked and freed;
//  5. the (level, split) state and directory snapshot published in
//     memory. The header catches up at the next clean commit.
func (db *DB) splitOne() error {
	level, split := unpackState(db.state.Load())
	n := db.levelBuckets(level)
	s, t := split, split+n
	// Lock the two affected stripes in index order (one lock if they
	// collide). Mutators of either bucket are quiesced for the split.
	si, ti := s&db.stripeMask, t&db.stripeMask
	lo, hi := min(si, ti), max(si, ti)
	db.stripes[lo].mu.Lock()
	if hi != lo {
		db.stripes[hi].mu.Lock()
	}
	defer func() {
		if hi != lo {
			db.stripes[hi].mu.Unlock()
		}
		db.stripes[lo].mu.Unlock()
	}()
	if db.closed {
		return ErrClosed
	}
	if err := db.markDirty(); err != nil {
		return err
	}

	// Read the source chain.
	var chain []chainPage
	defer func() {
		for i := range chain {
			putPage(chain[i].buf)
		}
	}()
	for p := db.bucketPageOf(s); p != 0; {
		buf := getPage()
		if err := db.readPage(p, buf); err != nil {
			putPage(buf)
			return err
		}
		//lint:ignore poolescape chain is a function-local staging slice; every chainPage.buf is released by the deferred putPage loop.
		chain = append(chain, chainPage{no: p, buf: buf})
		p = pageNext(buf)
	}

	// Partition: entries whose hash gains the new top bit move to t.
	// The rewrite is page-local — movers are packed out of each source
	// page independently — so a torn source write never loses an entry
	// another page's write was carrying.
	var moved []Pair
	for i := range chain {
		buf := chain[i].buf
		w := 0
		cnt := pageCount(buf)
		for j := 0; j < cnt; j++ {
			efp, v := entryAt(buf, j)
			if efp.Prefix64()%(n<<1) == t {
				moved = append(moved, Pair{FP: efp, Val: v})
				chain[i].dirty = true
				continue
			}
			if w != j {
				setEntryAt(buf, w, efp, v)
			}
			w++
		}
		if w != cnt {
			setPageCount(buf, w)
		}
	}

	// 1. Build and write the new bucket's chain, deepest page first.
	tPages := 1
	if len(moved) > SlotsPerPage {
		tPages = (len(moved) + SlotsPerPage - 1) / SlotsPerPage
	}
	tNos, err := db.allocRun(tPages)
	if err != nil {
		return err
	}
	tBuf := getPage()
	defer putPage(tBuf)
	for i := tPages - 1; i >= 0; i-- {
		clear(tBuf)
		lo := i * SlotsPerPage
		hi := min(len(moved), lo+SlotsPerPage)
		for j := lo; j < hi; j++ {
			setEntryAt(tBuf, j-lo, moved[j].FP, moved[j].Val)
		}
		setPageCount(tBuf, hi-lo)
		if i+1 < tPages {
			setPageNext(tBuf, tNos[i+1])
		}
		if err := db.writePage(tNos[i], tBuf); err != nil {
			return err
		}
	}

	// 2. Record the new bucket in the directory.
	if err := db.dirAppend(tNos[0]); err != nil {
		return err
	}

	// 3. Rewrite the source chain in place. From here on the split must
	// roll forward: a failed page write leaves at worst a stale copy of
	// a moved entry in the source chain, unreachable once the state
	// publishes (Compact and recovery drop such strays), whereas
	// aborting now would lose the entries already packed out. The new
	// chain skips pages that emptied; surviving pages keep their file
	// positions and are relinked around the gaps.
	var firstErr error
	keep := make([]chainPage, 0, len(chain))
	var dropped []uint64
	for i := range chain {
		if i == 0 || pageCount(chain[i].buf) > 0 {
			keep = append(keep, chain[i])
		} else {
			dropped = append(dropped, chain[i].no)
		}
	}
	for i := range keep {
		next := uint64(0)
		if i+1 < len(keep) {
			next = keep[i+1].no
		}
		if pageNext(keep[i].buf) != next {
			setPageNext(keep[i].buf, next)
			keep[i].dirty = true
		}
	}
	for i := len(keep) - 1; i >= 0; i-- {
		if !keep[i].dirty {
			continue
		}
		if err := db.writePage(keep[i].no, keep[i].buf); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// 4. Freed source overflow pages go to the free list.
	for _, no := range dropped {
		if err := db.freePage(no); err != nil && firstErr == nil {
			firstErr = err
		}
	}

	// 5. Publish. Readers blocked on the stripe locks recheck the
	// mapping and route to the new bucket from here on.
	db.publishDirEntry(tNos[0])
	if split+1 == n {
		db.state.Store(packState(level+1, 0))
	} else {
		db.state.Store(packState(level, split+1))
	}
	db.splits.Add(1)
	db.overflowPages.Add(uint64(tPages-1) - uint64(len(dropped)))
	if firstErr != nil {
		return fmt.Errorf("hashdb: %s: split bucket %d: %w", db.path, s, firstErr)
	}
	return nil
}

// CompactStats reports what a compaction pass reclaimed.
type CompactStats struct {
	// ChainsPacked counts bucket chains whose pages were rewritten.
	ChainsPacked uint64
	// PagesFreed counts overflow pages unlinked into the free list.
	PagesFreed uint64
	// EntriesMoved counts entries repacked into earlier chain pages.
	EntriesMoved uint64
	// StraysDropped counts stale entries discarded because they no
	// longer hash to the chain holding them (leftovers of a
	// rolled-forward split).
	StraysDropped uint64
}

// Compact walks every bucket chain, repacking entries into the fewest
// pages, dropping stale entries that no longer hash to the chain, and
// unlinking emptied overflow pages into the persistent free list. It
// locks one bucket's stripe at a time, so writers make progress
// throughout the pass; the pass tolerates concurrent splits (buckets
// created after it started are already dense).
//
// Crash safety mirrors the split: packed pages are written before the
// pages they drained are unlinked and freed, so entries exist in some
// reachable page at every instant; the transient duplicates a crash can
// leave in one chain are removed by recovery's chain dedupe.
func (db *DB) Compact() (CompactStats, error) {
	var cs CompactStats
	db.splitMu.Lock() // serialize against splits and other compactions
	defer db.splitMu.Unlock()
	for b := uint64(0); b < db.numBuckets(); b++ {
		if err := db.compactBucket(b, &cs); err != nil {
			return cs, err
		}
	}
	return cs, nil
}

// compactBucket repacks one bucket chain under its stripe lock.
func (db *DB) compactBucket(b uint64, cs *CompactStats) error {
	st := db.stripeOf(b)
	st.mu.Lock()
	defer st.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	var chain []chainPage
	defer func() {
		for i := range chain {
			putPage(chain[i].buf)
		}
	}()
	for p := db.bucketPageOf(b); p != 0; {
		buf := getPage()
		if err := db.readPage(p, buf); err != nil {
			putPage(buf)
			return err
		}
		//lint:ignore poolescape chain is a function-local staging slice; every chainPage.buf is released by the deferred putPage loop.
		chain = append(chain, chainPage{no: p, buf: buf})
		p = pageNext(buf)
	}
	// Collect the chain's live entries, dropping strays.
	var live []Pair
	strays := uint64(0)
	for i := range chain {
		cnt := pageCount(chain[i].buf)
		for j := 0; j < cnt; j++ {
			efp, v := entryAt(chain[i].buf, j)
			if db.resizable && db.bucketOfHash(efp.Prefix64()) != b {
				strays++
				continue
			}
			live = append(live, Pair{FP: efp, Val: v})
		}
	}
	needPages := 1
	if len(live) > SlotsPerPage {
		needPages = (len(live) + SlotsPerPage - 1) / SlotsPerPage
	}
	if strays == 0 && needPages == len(chain) {
		return nil // already dense
	}
	if err := db.markDirty(); err != nil {
		return err
	}

	// Repack into the chain's first needPages pages, then unlink and
	// free the rest. Packed pages are written deepest-first; the freed
	// tail keeps its (now duplicate) contents until freePage erases
	// them, so a crash anywhere leaves every entry reachable.
	movedBefore := 0
	for i := 0; i < needPages; i++ {
		movedBefore += pageCount(chain[i].buf)
	}
	for i := needPages - 1; i >= 0; i-- {
		buf := chain[i].buf
		clear(buf)
		lo := i * SlotsPerPage
		hi := min(len(live), lo+SlotsPerPage)
		for j := lo; j < hi; j++ {
			setEntryAt(buf, j-lo, live[j].FP, live[j].Val)
		}
		setPageCount(buf, hi-lo)
		if i+1 < needPages {
			setPageNext(buf, chain[i+1].no)
		}
		if err := db.writePage(chain[i].no, buf); err != nil {
			return err
		}
	}
	for i := needPages; i < len(chain); i++ {
		if err := db.freePage(chain[i].no); err != nil {
			return err
		}
		cs.PagesFreed++
	}
	db.overflowPages.Add(^uint64(len(chain) - needPages - 1))
	cs.ChainsPacked++
	cs.StraysDropped += strays
	if extra := len(live) - movedBefore + int(strays); extra > 0 {
		cs.EntriesMoved += uint64(extra)
	}
	if strays > 0 {
		db.entries.Add(^(uint64(strays) - 1))
	}
	return nil
}
