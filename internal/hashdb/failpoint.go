package hashdb

// Failure injection for crash-consistency testing. Two granularities:
//
//   - Failpoint wraps a Store and kills it at the Nth *entry* write,
//     simulating a node process dying mid-schedule: the killing write (and
//     everything after it) never reaches the wrapped store, so the store's
//     contents are exactly the durable state at the instant of death.
//     Batched writes die mid-batch with a prefix applied, the crash shape
//     the destager's group-commit waves produce.
//
//   - FailFile wraps a backing File and kills it at the Nth *file* write,
//     optionally letting a prefix of the killing write reach the file — a
//     torn page. Open a DB over it with OpenFile to exercise the
//     recovery pass against every partial-write shape.
//
// Both trip exactly once and report death as ErrKilled from every
// subsequent operation.

import (
	"context"
	"errors"
	"os"
	"sync"
	"sync/atomic"

	"shhc/internal/fingerprint"
)

// ErrKilled is returned by every operation on a store or file a failpoint
// has killed.
var ErrKilled = errors.New("hashdb: failpoint: killed")

// Failpoint wraps a Store, killing it at the Nth entry write. It forwards
// the batched read/write surfaces (BatchGetter, BatchPutter, Deleter,
// Ranger) so it is a drop-in stand-in for either hashdb store under the
// hybrid node.
type Failpoint struct {
	inner Store

	// remaining is the number of entry writes left before the kill; the
	// write that decrements it to zero is the one that dies (it does not
	// reach the wrapped store).
	remaining atomic.Int64
	killed    atomic.Bool

	// onKill, if set, runs exactly once, synchronously, at the moment the
	// failpoint trips — before the killing operation returns. Harnesses
	// use it to snapshot external durable state (e.g. a journal file) at
	// the instant of death.
	onKill     func()
	onKillOnce sync.Once
	initial    int64
}

// NewFailpoint wraps inner, killing it at the killAfterWrites-th entry
// write (1 kills the very first write). onKill may be nil.
func NewFailpoint(inner Store, killAfterWrites int64, onKill func()) *Failpoint {
	fp := &Failpoint{inner: inner, onKill: onKill, initial: killAfterWrites}
	fp.remaining.Store(killAfterWrites)
	return fp
}

// Killed reports whether the failpoint has tripped.
func (f *Failpoint) Killed() bool { return f.killed.Load() }

// Kill trips the failpoint immediately — as if the Nth-write trigger had
// just fired — for harnesses that want to die at a wall-clock instant
// (e.g. mid-churn) rather than a write count.
func (f *Failpoint) Kill() { f.trip() }

// Writes reports how many entry writes the store has seen (including the
// killing one). Harnesses probe a schedule's total with a distant kill
// point, then iterate every kill point up to it.
func (f *Failpoint) Writes() int64 { return f.initial - f.remaining.Load() }

// Inner returns the wrapped store (the durable state after a kill).
func (f *Failpoint) Inner() Store { return f.inner }

// trip marks the store dead and fires the kill hook.
func (f *Failpoint) trip() {
	f.killed.Store(true)
	f.onKillOnce.Do(func() {
		if f.onKill != nil {
			f.onKill()
		}
	})
}

// consume accounts one entry write, reporting whether it may proceed.
func (f *Failpoint) consume() bool {
	if f.killed.Load() {
		return false
	}
	if f.remaining.Add(-1) <= 0 {
		f.trip()
		return false
	}
	return true
}

// Get returns the value stored for fp.
func (f *Failpoint) Get(fp fingerprint.Fingerprint) (Value, bool, error) {
	if f.killed.Load() {
		return 0, false, ErrKilled
	}
	return f.inner.Get(fp)
}

// Has reports whether fp is stored.
func (f *Failpoint) Has(fp fingerprint.Fingerprint) (bool, error) {
	if f.killed.Load() {
		return false, ErrKilled
	}
	return f.inner.Has(fp)
}

// GetBatch forwards to the inner store's batched read path when it has
// one, and falls back to per-key Gets otherwise.
func (f *Failpoint) GetBatch(ctx context.Context, fps []fingerprint.Fingerprint) ([]Value, []bool, error) {
	if f.killed.Load() {
		return nil, nil, ErrKilled
	}
	if bg, ok := f.inner.(BatchGetter); ok {
		return bg.GetBatch(ctx, fps)
	}
	vals := make([]Value, len(fps))
	found := make([]bool, len(fps))
	for i, fp := range fps {
		v, ok, err := f.inner.Get(fp)
		if err != nil {
			return nil, nil, err
		}
		vals[i], found[i] = v, ok
	}
	return vals, found, nil
}

// Put stores fp -> v unless this is the killing write.
func (f *Failpoint) Put(fp fingerprint.Fingerprint, v Value) (bool, error) {
	if !f.consume() {
		return false, ErrKilled
	}
	return f.inner.Put(fp, v)
}

// PutBatch stores the pairs, dying mid-batch with a prefix applied when
// the kill point falls inside the batch: the prefix goes through per-key
// writes so exactly the entries before the kill reach the store.
func (f *Failpoint) PutBatch(ctx context.Context, pairs []Pair) ([]bool, int, error) {
	if f.killed.Load() {
		return nil, 0, ErrKilled
	}
	if rem := f.remaining.Load(); rem > int64(len(pairs)) {
		if bp, ok := f.inner.(BatchPutter); ok {
			created, pages, err := bp.PutBatch(ctx, pairs)
			if err == nil {
				f.remaining.Add(-int64(len(pairs)))
			}
			return created, pages, err
		}
	}
	created := make([]bool, len(pairs))
	writes := 0
	for i, p := range pairs {
		if !f.consume() {
			return nil, writes, ErrKilled
		}
		c, err := f.inner.Put(p.FP, p.Val)
		if err != nil {
			return nil, writes, err
		}
		created[i] = c
		writes++
	}
	return created, writes, nil
}

// Delete removes fp; a delete is a write and can be the killing one.
func (f *Failpoint) Delete(fp fingerprint.Fingerprint) (bool, error) {
	if !f.consume() {
		return false, ErrKilled
	}
	d, ok := f.inner.(Deleter)
	if !ok {
		return false, errors.New("hashdb: failpoint: inner store cannot delete")
	}
	return d.Delete(fp)
}

// Deleter matches core's optional store surface without importing core.
type Deleter interface {
	Delete(fp fingerprint.Fingerprint) (bool, error)
}

// Range forwards enumeration when the inner store supports it.
func (f *Failpoint) Range(fn func(fp fingerprint.Fingerprint, v Value) bool) error {
	if f.killed.Load() {
		return ErrKilled
	}
	r, ok := f.inner.(interface {
		Range(fn func(fp fingerprint.Fingerprint, v Value) bool) error
	})
	if !ok {
		return errors.New("hashdb: failpoint: inner store cannot enumerate")
	}
	return r.Range(fn)
}

// Len returns the number of stored entries.
func (f *Failpoint) Len() int { return f.inner.Len() }

// Sync makes previous writes durable; a dead store cannot.
func (f *Failpoint) Sync() error {
	if f.killed.Load() {
		return ErrKilled
	}
	return f.inner.Sync()
}

// Close closes the wrapped store — unless the failpoint tripped: a dead
// process never closes anything, and the harness reopens the inner store
// as the surviving durable state.
func (f *Failpoint) Close() error {
	if f.killed.Load() {
		return ErrKilled
	}
	return f.inner.Close()
}

var (
	_ Store       = (*Failpoint)(nil)
	_ BatchGetter = (*Failpoint)(nil)
	_ BatchPutter = (*Failpoint)(nil)
)

// FailFile wraps a backing File, killing it at the Nth file write with
// the first Partial bytes of the killing write applied (a torn write).
// Reads keep working after the kill only so the harness can inspect state;
// a reopened DB should use a fresh os.File on the same path.
type FailFile struct {
	f File
	// Partial is how many leading bytes of the killing write reach the
	// file (clamped to the write's length). 0 models an atomic device
	// that simply never performed the write.
	partial   int
	remaining atomic.Int64
	killed    atomic.Bool
	initial   int64
}

// NewFailFile wraps f, killing the killAfterWrites-th WriteAt (1 kills
// the first) after letting partial bytes of it through.
func NewFailFile(f File, killAfterWrites int64, partial int) *FailFile {
	ff := &FailFile{f: f, partial: partial, initial: killAfterWrites}
	ff.remaining.Store(killAfterWrites)
	return ff
}

// Killed reports whether the failpoint has tripped.
func (f *FailFile) Killed() bool { return f.killed.Load() }

// Writes reports how many file writes have been issued (including the
// killing one).
func (f *FailFile) Writes() int64 { return f.initial - f.remaining.Load() }

// ReadAt reads from the underlying file.
func (f *FailFile) ReadAt(p []byte, off int64) (int, error) { return f.f.ReadAt(p, off) }

// WriteAt writes to the underlying file unless this is the killing write,
// in which case only the torn prefix lands.
func (f *FailFile) WriteAt(p []byte, off int64) (int, error) {
	if f.killed.Load() {
		return 0, ErrKilled
	}
	if f.remaining.Add(-1) <= 0 {
		f.killed.Store(true)
		n := f.partial
		if n > len(p) {
			n = len(p)
		}
		if n > 0 {
			f.f.WriteAt(p[:n], off)
		}
		return 0, ErrKilled
	}
	return f.f.WriteAt(p, off)
}

// Truncate resizes the underlying file; a dead file cannot.
func (f *FailFile) Truncate(size int64) error {
	if f.killed.Load() {
		return ErrKilled
	}
	return f.f.Truncate(size)
}

// Stat forwards to the underlying file.
func (f *FailFile) Stat() (os.FileInfo, error) { return f.f.Stat() }

// Sync flushes the underlying file; a dead file cannot.
func (f *FailFile) Sync() error {
	if f.killed.Load() {
		return ErrKilled
	}
	return f.f.Sync()
}

// Close closes the underlying file (the harness needs the fd released to
// reopen the path).
func (f *FailFile) Close() error { return f.f.Close() }

var _ File = (*FailFile)(nil)
