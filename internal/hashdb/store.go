package hashdb

import (
	"sync"

	"shhc/internal/device"
	"shhc/internal/fingerprint"
)

// Store is the persistent-index contract the hybrid hash node builds on.
// *DB (SSD/HDD page store) and *MemStore (pure RAM) both implement it, as
// does the ChunkStash-style baseline index. Implementations must be safe
// for concurrent use: the striped hybrid node issues overlapping probes
// from every stripe.
// The //shhc:io markers declare every probe and mutation to be I/O for
// the lockio analyzer: call sites dispatch through this interface, so the
// SSD-backed implementation is not statically visible there, and even the
// RAM-backed one charges a device model. Len is a counter read.
type Store interface {
	// Get returns the value stored for fp.
	Get(fp fingerprint.Fingerprint) (Value, bool, error) //shhc:io
	// Has reports whether fp is stored.
	Has(fp fingerprint.Fingerprint) (bool, error) //shhc:io
	// Put stores fp -> v, reporting whether a new entry was created.
	Put(fp fingerprint.Fingerprint, v Value) (bool, error) //shhc:io
	// Len returns the number of stored entries.
	Len() int
	// Sync makes all previous writes durable.
	Sync() error //shhc:io
	// Close releases resources; the store is unusable afterwards.
	Close() error //shhc:io
}

var (
	_ Store = (*DB)(nil)
	_ Store = (*MemStore)(nil)
)

// memShards is the MemStore shard count (power of two). 64 shards keep
// shard-lock collision probability low through at least ~32 hardware
// threads while costing only 64 small map headers per store.
const memShards = 64

// MemStore is an in-RAM Store. It charges each probe to a device model
// (RAM by default) so simulations can compare tiers honestly, and it backs
// tests that do not want filesystem traffic.
//
// The key space is split over power-of-two map shards, each guarded by its
// own RWMutex, so concurrent probes from different node stripes proceed in
// parallel instead of serializing behind one lock.
type MemStore struct {
	shards [memShards]memShard
	dev    *device.Device
	// closed is written under every shard lock and read under any one,
	// so each operation observes it coherently with the shard it locks.
	closed bool
}

type memShard struct {
	mu sync.RWMutex
	m  map[fingerprint.Fingerprint]Value
}

// NewMemStore creates an empty in-memory store. dev may be nil, in which
// case a non-sleeping RAM accountant is used.
func NewMemStore(dev *device.Device) *MemStore {
	if dev == nil {
		dev = device.New(device.RAM, device.Account)
	}
	s := &MemStore{dev: dev}
	for i := range s.shards {
		s.shards[i].m = make(map[fingerprint.Fingerprint]Value)
	}
	return s
}

func (s *MemStore) shard(fp fingerprint.Fingerprint) *memShard {
	return &s.shards[fp.Bucket64()&(memShards-1)]
}

// Get returns the value stored for fp.
func (s *MemStore) Get(fp fingerprint.Fingerprint) (Value, bool, error) {
	sh := s.shard(fp)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if s.closed {
		return 0, false, ErrClosed
	}
	s.dev.Read(entrySize)
	v, ok := sh.m[fp]
	return v, ok, nil
}

// Has reports whether fp is stored.
func (s *MemStore) Has(fp fingerprint.Fingerprint) (bool, error) {
	_, ok, err := s.Get(fp)
	return ok, err
}

// Put stores fp -> v, reporting whether a new entry was created.
func (s *MemStore) Put(fp fingerprint.Fingerprint, v Value) (bool, error) {
	sh := s.shard(fp)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s.closed {
		return false, ErrClosed
	}
	s.dev.Write(entrySize)
	_, existed := sh.m[fp]
	sh.m[fp] = v
	return !existed, nil
}

// Delete removes fp, reporting whether it was present.
func (s *MemStore) Delete(fp fingerprint.Fingerprint) (bool, error) {
	sh := s.shard(fp)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s.closed {
		return false, ErrClosed
	}
	_, existed := sh.m[fp]
	delete(sh.m, fp)
	return existed, nil
}

// Len returns the number of stored entries. Shards are counted one at a
// time, so the total is loosely consistent under concurrent writes.
func (s *MemStore) Len() int {
	n := 0
	for i := range s.shards {
		s.shards[i].mu.RLock()
		n += len(s.shards[i].m)
		s.shards[i].mu.RUnlock()
	}
	return n
}

// Range calls fn for every entry until fn returns false. Each shard is
// visited under its own read lock; entries written to an already-visited
// shard during the walk are not observed.
func (s *MemStore) Range(fn func(fp fingerprint.Fingerprint, v Value) bool) error {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		if s.closed {
			sh.mu.RUnlock()
			return ErrClosed
		}
		for fp, v := range sh.m {
			if !fn(fp, v) {
				sh.mu.RUnlock()
				return nil
			}
		}
		sh.mu.RUnlock()
	}
	return nil
}

// Sync is a no-op for the in-memory store.
func (s *MemStore) Sync() error {
	sh := &s.shards[0]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	return nil
}

// Close releases the store.
func (s *MemStore) Close() error {
	for i := range s.shards {
		s.shards[i].mu.Lock()
		defer s.shards[i].mu.Unlock()
	}
	if s.closed {
		return ErrClosed
	}
	s.closed = true
	for i := range s.shards {
		s.shards[i].m = nil
	}
	return nil
}

// Device returns the device the store charges its probes to.
func (s *MemStore) Device() *device.Device { return s.dev }
