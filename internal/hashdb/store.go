package hashdb

import (
	"sync"

	"shhc/internal/device"
	"shhc/internal/fingerprint"
)

// Store is the persistent-index contract the hybrid hash node builds on.
// *DB (SSD/HDD page store) and *MemStore (pure RAM) both implement it, as
// does the ChunkStash-style baseline index.
type Store interface {
	// Get returns the value stored for fp.
	Get(fp fingerprint.Fingerprint) (Value, bool, error)
	// Has reports whether fp is stored.
	Has(fp fingerprint.Fingerprint) (bool, error)
	// Put stores fp -> v, reporting whether a new entry was created.
	Put(fp fingerprint.Fingerprint, v Value) (bool, error)
	// Len returns the number of stored entries.
	Len() int
	// Sync makes all previous writes durable.
	Sync() error
	// Close releases resources; the store is unusable afterwards.
	Close() error
}

var (
	_ Store = (*DB)(nil)
	_ Store = (*MemStore)(nil)
)

// MemStore is an in-RAM Store. It charges each probe to a device model
// (RAM by default) so simulations can compare tiers honestly, and it backs
// tests that do not want filesystem traffic.
type MemStore struct {
	mu     sync.RWMutex
	m      map[fingerprint.Fingerprint]Value
	dev    *device.Device
	closed bool
}

// NewMemStore creates an empty in-memory store. dev may be nil, in which
// case a non-sleeping RAM accountant is used.
func NewMemStore(dev *device.Device) *MemStore {
	if dev == nil {
		dev = device.New(device.RAM, device.Account)
	}
	return &MemStore{m: make(map[fingerprint.Fingerprint]Value), dev: dev}
}

// Get returns the value stored for fp.
func (s *MemStore) Get(fp fingerprint.Fingerprint) (Value, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return 0, false, ErrClosed
	}
	s.dev.Read(entrySize)
	v, ok := s.m[fp]
	return v, ok, nil
}

// Has reports whether fp is stored.
func (s *MemStore) Has(fp fingerprint.Fingerprint) (bool, error) {
	_, ok, err := s.Get(fp)
	return ok, err
}

// Put stores fp -> v, reporting whether a new entry was created.
func (s *MemStore) Put(fp fingerprint.Fingerprint, v Value) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, ErrClosed
	}
	s.dev.Write(entrySize)
	_, existed := s.m[fp]
	s.m[fp] = v
	return !existed, nil
}

// Delete removes fp, reporting whether it was present.
func (s *MemStore) Delete(fp fingerprint.Fingerprint) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, ErrClosed
	}
	_, existed := s.m[fp]
	delete(s.m, fp)
	return existed, nil
}

// Len returns the number of stored entries.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Range calls fn for every entry until fn returns false.
func (s *MemStore) Range(fn func(fp fingerprint.Fingerprint, v Value) bool) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	for fp, v := range s.m {
		if !fn(fp, v) {
			return nil
		}
	}
	return nil
}

// Sync is a no-op for the in-memory store.
func (s *MemStore) Sync() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	return nil
}

// Close releases the store.
func (s *MemStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.closed = true
	s.m = nil
	return nil
}

// Device returns the device the store charges its probes to.
func (s *MemStore) Device() *device.Device { return s.dev }
