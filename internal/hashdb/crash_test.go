package hashdb

// The kill-at-every-write crash-injection harness. A deterministic
// workload (batched creates, per-key creates, updates, deletes, a second
// batch, a sync) runs against a DB whose backing file dies at the Nth
// write — for every N the schedule reaches, at several torn-write
// granularities. After each kill the file is reopened and three properties
// are asserted:
//
//  1. Open never fails permanently: recovery repairs whatever the kill
//     tore and a second reopen is clean.
//  2. No corrupt data is served: every readable value is one some
//     operation actually wrote for that key, and reads never error.
//  3. Durability: an operation that completed before the kill — and whose
//     key no later (killed) operation touched — is fully visible, except
//     that a torn in-place page overwrite may quarantine previously
//     durable entries; when the kill granularity is whole-write (an
//     atomic device), recovery must report zero torn pages and nothing
//     acknowledged may be lost at all.
//
// Deletes are asserted the strongest way: an acknowledged delete stays
// deleted through any later crash — recovery must never resurrect it.

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// crashModel tracks, per key, every value any operation attempted to
// write, the last acknowledged state, and whether the key's final
// attempted operation was acknowledged.
type crashModel struct {
	attempted  map[uint64]map[Value]bool
	settledVal map[uint64]Value
	settledDel map[uint64]bool
	clean      map[uint64]bool // last attempt on the key acked
}

func newCrashModel() *crashModel {
	return &crashModel{
		attempted:  make(map[uint64]map[Value]bool),
		settledVal: make(map[uint64]Value),
		settledDel: make(map[uint64]bool),
		clean:      make(map[uint64]bool),
	}
}

func (m *crashModel) attemptPut(k uint64, v Value) {
	if m.attempted[k] == nil {
		m.attempted[k] = make(map[Value]bool)
	}
	m.attempted[k][v] = true
	m.clean[k] = false
}

func (m *crashModel) ackPut(k uint64, v Value) {
	m.settledVal[k] = v
	m.settledDel[k] = false
	m.clean[k] = true
}

func (m *crashModel) attemptDel(k uint64) { m.clean[k] = false }

func (m *crashModel) ackDel(k uint64) {
	m.settledDel[k] = true
	m.clean[k] = true
}

// crashSchedule drives the workload against db, updating the model as
// operations complete. It returns nil when the schedule finished, or the
// kill error that stopped it.
func crashSchedule(db *DB, m *crashModel) error {
	ctx := context.Background()
	putBatch := func(keys []uint64, gen uint64) error {
		pairs := make([]Pair, len(keys))
		for i, k := range keys {
			pairs[i] = Pair{FP: fp(k), Val: Value(k*1000 + gen)}
			m.attemptPut(k, pairs[i].Val)
		}
		if _, _, err := db.PutBatch(ctx, pairs); err != nil {
			return err
		}
		for i, k := range keys {
			m.ackPut(k, pairs[i].Val)
		}
		return nil
	}
	put := func(k, gen uint64) error {
		v := Value(k*1000 + gen)
		m.attemptPut(k, v)
		if _, err := db.Put(fp(k), v); err != nil {
			return err
		}
		m.ackPut(k, v)
		return nil
	}
	del := func(k uint64) error {
		m.attemptDel(k)
		if _, err := db.Delete(fp(k)); err != nil {
			return err
		}
		m.ackDel(k)
		return nil
	}

	// 1: a batched create wave.
	batchA := make([]uint64, 12)
	for i := range batchA {
		batchA[i] = 10 + uint64(i)
	}
	if err := putBatch(batchA, 1); err != nil {
		return err
	}
	// 2: per-key creates.
	for k := uint64(22); k < 28; k++ {
		if err := put(k, 1); err != nil {
			return err
		}
	}
	// 3: updates of seeded entries.
	for k := uint64(0); k < 4; k++ {
		if err := put(k, 2); err != nil {
			return err
		}
	}
	// 4: deletes of seeded entries (never touched again).
	for k := uint64(5); k < 8; k++ {
		if err := del(k); err != nil {
			return err
		}
	}
	// 5: a second batch, growing the chains further.
	batchB := make([]uint64, 10)
	for i := range batchB {
		batchB[i] = 30 + uint64(i)
	}
	if err := putBatch(batchB, 1); err != nil {
		return err
	}
	// 6: updates of entries created under the failpoint.
	for k := uint64(10); k < 13; k++ {
		if err := put(k, 3); err != nil {
			return err
		}
	}
	// 7: an explicit durability barrier.
	return db.Sync()
}

// seedCrashTemplate builds the pre-crash database image: keys 0..9, closed
// cleanly. Every run starts from a byte copy of it.
func seedCrashTemplate(t *testing.T, path string, m *crashModel) {
	t.Helper()
	db, err := Create(path, Options{Buckets: 2})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for k := uint64(0); k < 10; k++ {
		v := Value(k * 1000)
		m.attemptPut(k, v)
		if _, err := db.Put(fp(k), v); err != nil {
			t.Fatalf("seed Put: %v", err)
		}
		m.ackPut(k, v)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("seed Close: %v", err)
	}
}

func TestCrashInjectionEveryWritePoint(t *testing.T) {
	dir := t.TempDir()
	tmpl := filepath.Join(dir, "tmpl.shdb")
	seedCrashTemplate(t, tmpl, newCrashModel())
	tmplBytes, err := os.ReadFile(tmpl)
	if err != nil {
		t.Fatal(err)
	}

	// Probe the schedule's total write count with an unreachable kill
	// point.
	probePath := filepath.Join(dir, "probe.shdb")
	if err := os.WriteFile(probePath, tmplBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	pf, err := openRW(probePath)
	if err != nil {
		t.Fatal(err)
	}
	probe := NewFailFile(pf, math.MaxInt64, 0)
	pdb, err := OpenFile(probe, probePath, nil)
	if err != nil {
		t.Fatalf("probe OpenFile: %v", err)
	}
	if err := crashSchedule(pdb, newCrashModel()); err != nil {
		t.Fatalf("probe schedule: %v", err)
	}
	totalWrites := probe.Writes()
	pdb.Close()
	if totalWrites < 20 {
		t.Fatalf("schedule issued only %d writes; too small to be a meaningful harness", totalWrites)
	}

	// partial = -1 means whole-write atomic kills (the write simply never
	// happens); the others tear the killing write at that byte offset.
	for _, partial := range []int{-1, 7, PageSize / 2, PageSize - 1} {
		for k := int64(1); k <= totalWrites; k++ {
			runCrashPoint(t, tmplBytes, dir, k, partial)
		}
	}
}

func runCrashPoint(t *testing.T, tmplBytes []byte, dir string, killAt int64, partial int) {
	t.Helper()
	path := filepath.Join(dir, "run.shdb")
	if err := os.WriteFile(path, tmplBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	m := newCrashModel()
	seedModel(m)

	f, err := openRW(path)
	if err != nil {
		t.Fatal(err)
	}
	p := partial
	if p < 0 {
		p = 0
	}
	ff := NewFailFile(f, killAt, p)
	db, err := OpenFile(ff, path, nil)
	if err != nil {
		t.Fatalf("kill=%d partial=%d: OpenFile on clean seed: %v", killAt, partial, err)
	}
	serr := crashSchedule(db, m)
	if serr == nil {
		// Kill point beyond this schedule (it can finish early only if
		// killAt > writes issued): everything settled; fall through to
		// the same assertions after a clean close.
		if err := db.Close(); err != nil {
			t.Fatalf("kill=%d partial=%d: clean Close: %v", killAt, partial, err)
		}
	} else if !errors.Is(serr, ErrKilled) {
		t.Fatalf("kill=%d partial=%d: schedule failed with non-kill error: %v", killAt, partial, serr)
	} else {
		f.Close() // the process died; release the fd
	}

	// Reopen: recovery must always produce a servable database.
	db2, err := Open(path, nil)
	if err != nil {
		t.Fatalf("kill=%d partial=%d: Open after crash: %v", killAt, partial, err)
	}
	defer db2.Close()
	if err := db2.Check(); err != nil {
		t.Fatalf("kill=%d partial=%d: Check after recovery: %v", killAt, partial, err)
	}
	rs := db2.Recovery()
	if partial < 0 && (rs.TornPages != 0 || rs.TailBytes != 0) {
		t.Fatalf("kill=%d atomic: recovery reports torn state %+v from whole-write kills", killAt, rs)
	}

	for k, vals := range m.attempted {
		v, ok, gerr := db2.Get(fp(k))
		if gerr != nil {
			t.Fatalf("kill=%d partial=%d: Get(%d) after recovery: %v", killAt, partial, k, gerr)
		}
		if ok && !vals[v] {
			t.Fatalf("kill=%d partial=%d: Get(%d) = %d, a value never written for it (corrupt data served)", killAt, partial, k, v)
		}
		if !m.clean[k] {
			continue // the key's last op was killed: either outcome is legal
		}
		if m.settledDel[k] {
			if ok {
				t.Fatalf("kill=%d partial=%d: key %d resurrected after acknowledged delete", killAt, partial, k)
			}
			continue
		}
		want := m.settledVal[k]
		if ok && v != want {
			t.Fatalf("kill=%d partial=%d: settled key %d = %d, want %d", killAt, partial, k, v, want)
		}
		if !ok {
			// A torn in-place overwrite may quarantine a page holding
			// previously durable entries; that loss must be visible in
			// the recovery report. Atomic kills may never lose settled
			// state.
			if partial < 0 {
				t.Fatalf("kill=%d atomic: settled key %d lost with no torn page", killAt, k)
			}
			if rs.TornPages == 0 {
				t.Fatalf("kill=%d partial=%d: settled key %d lost but recovery reports no torn pages", killAt, partial, k)
			}
		}
	}

	// A second reopen must be clean: recovery converged and committed.
	db2.Close()
	db3, err := Open(path, nil)
	if err != nil {
		t.Fatalf("kill=%d partial=%d: second Open: %v", killAt, partial, err)
	}
	if rs := db3.Recovery(); rs.Runs != 0 {
		t.Fatalf("kill=%d partial=%d: second open ran recovery again: %+v", killAt, partial, rs)
	}
	db3.Close()
}

// seedModel reproduces seedCrashTemplate's acknowledged state in a fresh
// model (the template is byte-copied, not re-seeded, per run).
func seedModel(m *crashModel) {
	for k := uint64(0); k < 10; k++ {
		v := Value(k * 1000)
		m.attemptPut(k, v)
		m.ackPut(k, v)
	}
}
