package hashdb

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"shhc/internal/device"
	"shhc/internal/fingerprint"
)

// TestResizeSplitsGrowBuckets drives a tiny resizable table far past its
// create-time capacity and verifies that linear-hashing splits grew the
// bucket count online, every key stayed retrievable through the growth,
// and the file remains structurally sound.
func TestResizeSplitsGrowBuckets(t *testing.T) {
	db := newTestDB(t, Options{Buckets: 2, Resize: ResizeOn, SplitLoadFactor: 0.5})
	const n = 4000
	for i := uint64(0); i < n; i++ {
		if _, err := db.Put(fp(i), Value(i)); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	st := db.Stats()
	if st.Splits == 0 {
		t.Fatal("no splits happened; table did not grow")
	}
	if st.Buckets <= st.BaseBuckets {
		t.Fatalf("Buckets = %d, want > base %d", st.Buckets, st.BaseBuckets)
	}
	if want := st.BaseBuckets<<st.Level + st.SplitPointer; st.Buckets != want {
		t.Fatalf("Buckets = %d, level/pointer say %d", st.Buckets, want)
	}
	for i := uint64(0); i < n; i++ {
		v, ok, err := db.Get(fp(i))
		if err != nil || !ok || v != Value(i) {
			t.Fatalf("Get(%d) after growth = (%v, %v, %v)", i, v, ok, err)
		}
	}
	if _, ok, _ := db.Get(fp(n + 1)); ok {
		t.Fatal("absent key reported present after growth")
	}
	if err := db.Check(); err != nil {
		t.Fatalf("Check after growth: %v", err)
	}
}

// TestResizeKeepsChainsShort is the capacity bug this PR fixes: a fixed
// table driven past its sizing grows long overflow chains, while a
// resizable one holds them flat by splitting.
func TestResizeKeepsChainsShort(t *testing.T) {
	const n = 6000
	fixed := newTestDB(t, Options{Buckets: 4, Resize: ResizeOff})
	grow := newTestDB(t, Options{Buckets: 4, Resize: ResizeOn})
	for i := uint64(0); i < n; i++ {
		if _, err := fixed.Put(fp(i), Value(i)); err != nil {
			t.Fatalf("fixed Put(%d): %v", i, err)
		}
		if _, err := grow.Put(fp(i), Value(i)); err != nil {
			t.Fatalf("grow Put(%d): %v", i, err)
		}
	}
	fs, gs := fixed.Stats(), grow.Stats()
	if fs.Splits != 0 {
		t.Fatalf("fixed table split %d times", fs.Splits)
	}
	if fs.MaxChain < 2*gs.MaxChain {
		t.Fatalf("fixed MaxChain %d not clearly worse than resizable %d", fs.MaxChain, gs.MaxChain)
	}
	// A resizable table's load factor settles near its split trigger.
	if ceiling := DefaultSplitLoadFactor * 1.5; gs.LoadFactor > ceiling {
		t.Fatalf("resizable load factor %.2f above split ceiling %.2f", gs.LoadFactor, ceiling)
	}
}

// TestResizeStatePersistsAcrossReopen verifies the v4 header round-trips
// the growth state: after splits, close and reopen restore the same
// level/pointer/bucket-directory and every key.
func TestResizeStatePersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grow.shdb")
	db, err := Create(path, Options{Buckets: 2, Resize: ResizeOn, SplitLoadFactor: 0.5})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	const n = 3000
	for i := uint64(0); i < n; i++ {
		if _, err := db.Put(fp(i), Value(i)); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	before := db.Stats()
	if before.Splits == 0 {
		t.Fatal("seed made no splits")
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	db, err = Open(path, device.New(device.SSD, device.Account))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	if rs := db.Recovery(); rs.Runs != 0 {
		t.Fatalf("clean reopen ran recovery: %+v", rs)
	}
	after := db.Stats()
	if after.Buckets != before.Buckets || after.Level != before.Level || after.SplitPointer != before.SplitPointer {
		t.Fatalf("growth state did not persist: before %d/%d/%d, after %d/%d/%d",
			before.Buckets, before.Level, before.SplitPointer,
			after.Buckets, after.Level, after.SplitPointer)
	}
	if after.Entries != n {
		t.Fatalf("Entries = %d, want %d", after.Entries, n)
	}
	for i := uint64(0); i < n; i++ {
		v, ok, err := db.Get(fp(i))
		if err != nil || !ok || v != Value(i) {
			t.Fatalf("Get(%d) after reopen = (%v, %v, %v)", i, v, ok, err)
		}
	}
	if err := db.Check(); err != nil {
		t.Fatalf("Check after reopen: %v", err)
	}
}

// TestResizeV3FileUpgradesOnFirstSplit is the migration path: a file
// written by the fixed-capacity format (v3 header) opens read-compatible,
// and the first split upgrades it to v4 without losing anything.
func TestResizeV3FileUpgradesOnFirstSplit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v3.shdb")
	// ResizeOff at create keeps the header v3 (no growth state to record).
	db, err := Create(path, Options{Buckets: 2, Resize: ResizeOff})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	const seed = 200
	for i := uint64(0); i < seed; i++ {
		db.Put(fp(i), Value(i))
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Default open is resizable: the v3 file starts splitting under load.
	db, err = Open(path, device.New(device.SSD, device.Account))
	if err != nil {
		t.Fatalf("Open v3 file: %v", err)
	}
	if st := db.Stats(); !st.Resizable {
		t.Fatal("reopened file is not resizable by default")
	}
	const n = 4000
	for i := uint64(0); i < n; i++ {
		if _, err := db.Put(fp(i), Value(i)); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	if st := db.Stats(); st.Splits == 0 {
		t.Fatal("upgraded file never split")
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The upgraded (v4) file reopens with everything intact.
	db, err = Open(path, device.New(device.SSD, device.Account))
	if err != nil {
		t.Fatalf("Open v4 file: %v", err)
	}
	defer db.Close()
	for i := uint64(0); i < n; i++ {
		v, ok, err := db.Get(fp(i))
		if err != nil || !ok || v != Value(i) {
			t.Fatalf("Get(%d) after upgrade = (%v, %v, %v)", i, v, ok, err)
		}
	}
	if err := db.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

// TestResizeExplicitBucketsStaysFixed pins the compatibility rule: sizing
// a table with an explicit bucket count (tests, sizing experiments) opts
// out of growth unless ResizeOn is asked for.
func TestResizeExplicitBucketsStaysFixed(t *testing.T) {
	db := newTestDB(t, Options{Buckets: 1})
	for i := uint64(0); i < 2000; i++ {
		if _, err := db.Put(fp(i), Value(i)); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	st := db.Stats()
	if st.Resizable || st.Splits != 0 || st.Buckets != 1 {
		t.Fatalf("explicit-bucket table grew: resizable=%v splits=%d buckets=%d",
			st.Resizable, st.Splits, st.Buckets)
	}
}

// TestSplitConcurrentWritesAndReads hammers a splitting table from many
// goroutines: the stale-retry protocol must route every displaced probe to
// its new bucket. Run under -race this also checks the split/reader
// synchronization.
func TestSplitConcurrentWritesAndReads(t *testing.T) {
	db := newTestDB(t, Options{Buckets: 2, Resize: ResizeOn, SplitLoadFactor: 0.5})
	const (
		writers = 4
		perW    = 1500
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w * perW)
			for i := uint64(0); i < perW; i++ {
				if _, err := db.Put(fp(base+i), Value(base+i)); err != nil {
					t.Errorf("Put(%d): %v", base+i, err)
					return
				}
				if i%64 == 0 { // interleave reads with ongoing splits
					if _, _, err := db.Get(fp(base + i/2)); err != nil {
						t.Errorf("Get: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	st := db.Stats()
	if st.Splits == 0 {
		t.Fatal("concurrent load made no splits")
	}
	if st.Entries != writers*perW {
		t.Fatalf("Entries = %d, want %d", st.Entries, writers*perW)
	}
	for i := uint64(0); i < writers*perW; i++ {
		v, ok, err := db.Get(fp(i))
		if err != nil || !ok || v != Value(i) {
			t.Fatalf("Get(%d) = (%v, %v, %v)", i, v, ok, err)
		}
	}
	if err := db.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

// TestSplitBatchedWritesDuringGrowth drives growth through PutBatch /
// GetBatch, whose lock-free grouping races the split's bucket remapping;
// the stale-retry rounds must converge with nothing lost.
func TestSplitBatchedWritesDuringGrowth(t *testing.T) {
	db := newTestDB(t, Options{Buckets: 2, Resize: ResizeOn, SplitLoadFactor: 0.5})
	const (
		batches   = 30
		batchSize = 200
	)
	for b := 0; b < batches; b++ {
		pairs := make([]Pair, batchSize)
		for i := range pairs {
			k := uint64(b*batchSize + i)
			pairs[i] = Pair{FP: fp(k), Val: Value(k)}
		}
		created, _, err := db.PutBatch(t.Context(), pairs)
		if err != nil {
			t.Fatalf("PutBatch %d: %v", b, err)
		}
		for i, c := range created {
			if !c {
				t.Fatalf("batch %d pair %d reported update, want create", b, i)
			}
		}
	}
	if st := db.Stats(); st.Splits == 0 {
		t.Fatal("batched load made no splits")
	}
	probe := make([]fingerprint.Fingerprint, batches*batchSize)
	for i := range probe {
		probe[i] = fp(uint64(i))
	}
	vals, found, err := db.GetBatch(t.Context(), probe)
	if err != nil {
		t.Fatalf("GetBatch: %v", err)
	}
	for i := range vals {
		if !found[i] || vals[i] != Value(i) {
			t.Fatalf("GetBatch[%d] = (%v, %v)", i, vals[i], found[i])
		}
	}
}

// TestCompactRepacksSparseChains deletes most of a long chain and checks
// Compact packs the survivors into fewer pages and reclaims the rest into
// the free list.
func TestCompactRepacksSparseChains(t *testing.T) {
	db := newTestDB(t, Options{Buckets: 1})
	n := SlotsPerPage * 4 // five-page chain
	for i := 0; i < n; i++ {
		if _, err := db.Put(fp(uint64(i)), Value(i)); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	// Delete three quarters, scattered so every page goes sparse without
	// emptying (an emptied page would be unlinked by Delete itself).
	for i := 0; i < n; i++ {
		if i%4 == 0 {
			continue
		}
		if ok, err := db.Delete(fp(uint64(i))); err != nil || !ok {
			t.Fatalf("Delete(%d) = (%v, %v)", i, ok, err)
		}
	}
	before := db.Stats()
	cs, err := db.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if cs.PagesFreed == 0 || cs.ChainsPacked == 0 {
		t.Fatalf("Compact freed nothing: %+v", cs)
	}
	after := db.Stats()
	if after.OverflowPages >= before.OverflowPages {
		t.Fatalf("OverflowPages %d -> %d, want a decrease", before.OverflowPages, after.OverflowPages)
	}
	if after.FreePages == 0 {
		t.Fatal("no pages reached the free list")
	}
	if after.Pages != before.Pages {
		t.Fatalf("Compact changed the file size: %d -> %d pages", before.Pages, after.Pages)
	}
	for i := 0; i < n; i++ {
		v, ok, err := db.Get(fp(uint64(i)))
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		if want := i%4 == 0; ok != want {
			t.Fatalf("Get(%d) present=%v, want %v", i, ok, want)
		}
		if ok && v != Value(i) {
			t.Fatalf("Get(%d) = %v, want %v", i, v, i)
		}
	}
	if err := db.Check(); err != nil {
		t.Fatalf("Check after Compact: %v", err)
	}
}

// TestFreelistReuseBoundsFileGrowth fills, deletes, compacts, then fills
// again: the second fill must drain the free list before the file grows.
func TestFreelistReuseBoundsFileGrowth(t *testing.T) {
	db := newTestDB(t, Options{Buckets: 1})
	n := SlotsPerPage * 4
	for i := 0; i < n; i++ {
		db.Put(fp(uint64(i)), Value(i))
	}
	for i := 0; i < n; i++ {
		if i%8 == 0 {
			continue
		}
		db.Delete(fp(uint64(i)))
	}
	if _, err := db.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st := db.Stats()
	if st.FreePages == 0 {
		t.Fatal("compaction produced no free pages")
	}
	pagesBefore := st.Pages
	// Refill roughly what was deleted: page demand is covered by the free
	// list, so the file must not grow.
	for i := n; i < n+n/2; i++ {
		if _, err := db.Put(fp(uint64(i)), Value(i)); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	st = db.Stats()
	if st.Pages != pagesBefore {
		t.Fatalf("file grew from %d to %d pages with %d free pages available",
			pagesBefore, st.Pages, st.FreePages)
	}
	if err := db.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

// TestFreelistDeleteChurnKeepsChainsFlat is the Delete regression this PR
// fixes: emptied overflow pages used to stay linked forever, so
// delete-heavy churn grew chains without bound. With unlink + free-list
// reuse, chain length and file size stay flat across churn cycles.
func TestFreelistDeleteChurnKeepsChainsFlat(t *testing.T) {
	db := newTestDB(t, Options{Buckets: 1})
	wave := SlotsPerPage * 2 // two fresh pages per wave
	var pagesHigh uint64
	for cycle := 0; cycle < 12; cycle++ {
		base := uint64(cycle * wave)
		for i := uint64(0); i < uint64(wave); i++ {
			if _, err := db.Put(fp(base+i), Value(base+i)); err != nil {
				t.Fatalf("cycle %d Put: %v", cycle, err)
			}
		}
		for i := uint64(0); i < uint64(wave); i++ {
			if ok, err := db.Delete(fp(base + i)); err != nil || !ok {
				t.Fatalf("cycle %d Delete = (%v, %v)", cycle, ok, err)
			}
		}
		if st := db.Stats(); st.Pages > pagesHigh {
			pagesHigh = st.Pages
		}
	}
	st := db.Stats()
	// Churn of two pages' worth of entries should never need more than a
	// few pages total, and must not scale with the cycle count.
	if st.MaxChain > 4 {
		t.Fatalf("MaxChain = %d after churn, want <= 4 (emptied pages not unlinked?)", st.MaxChain)
	}
	if pagesHigh > 1+1+6 { // header + bucket page + small slack
		t.Fatalf("file peaked at %d pages during churn, want bounded (freed pages not reused?)", pagesHigh)
	}
	if err := db.Check(); err != nil {
		t.Fatalf("Check after churn: %v", err)
	}
}

// TestCompactDuringRangeAndWrites runs Compact, Range, and writers
// concurrently; chunked Range locking means none of them may deadlock or
// starve, and the table must stay consistent.
func TestCompactDuringRangeAndWrites(t *testing.T) {
	db := newTestDB(t, Options{Buckets: 2, Resize: ResizeOn, SplitLoadFactor: 0.5})
	const n = 2000
	for i := uint64(0); i < n; i++ {
		db.Put(fp(i), Value(i))
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := uint64(n); i < n+500; i++ {
			if _, err := db.Put(fp(i), Value(i)); err != nil {
				t.Errorf("Put(%d): %v", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		seen := 0
		err := db.Range(func(k fingerprint.Fingerprint, v Value) bool {
			seen++
			return true
		})
		if err != nil {
			t.Errorf("Range: %v", err)
		}
		if seen < n {
			t.Errorf("Range saw %d entries, want >= %d", seen, n)
		}
	}()
	if _, err := db.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := db.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

// TestRangeDoesNotBlockWriters pins the chunked-locking fix: Range used to
// hold every stripe read lock for the whole scan, so a slow consumer
// stalled all writers. Now the callback runs with no locks held.
func TestRangeDoesNotBlockWriters(t *testing.T) {
	db := newTestDB(t, Options{Buckets: 4})
	for i := uint64(0); i < 50; i++ {
		db.Put(fp(i), Value(i))
	}
	var once sync.Once
	entered := make(chan struct{})
	release := make(chan struct{})
	rangeDone := make(chan error, 1)
	go func() {
		rangeDone <- db.Range(func(k fingerprint.Fingerprint, v Value) bool {
			once.Do(func() { close(entered) })
			<-release
			return true
		})
	}()
	<-entered
	putDone := make(chan error, 1)
	go func() {
		_, err := db.Put(fp(1000), Value(1000))
		putDone <- err
	}()
	select {
	case err := <-putDone:
		if err != nil {
			t.Fatalf("Put during Range: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Put blocked behind a stalled Range consumer")
	}
	close(release)
	if err := <-rangeDone; err != nil {
		t.Fatalf("Range: %v", err)
	}
}
