package hashdb

import (
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"path/filepath"
	"testing"

	"shhc/internal/fingerprint"
)

// crashDB creates a database at path with Buckets=1 (so every entry is on
// the single bucket chain and overflow pages exist), fills it with n
// entries, and abandons it dirty — the header says unclean, so the next
// Open runs recovery.
func crashDB(t *testing.T, path string, n uint64) {
	t.Helper()
	db, err := Create(path, Options{Buckets: 1})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := uint64(0); i < n; i++ {
		if _, err := db.Put(fp(i), Value(i)); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	if err := db.CloseWithoutSync(); err != nil {
		t.Fatalf("CloseWithoutSync: %v", err)
	}
}

// countSurvivors asserts every surviving entry has its exact value and
// returns how many of the n seeded entries are present.
func countSurvivors(t *testing.T, db *DB, n uint64) int {
	t.Helper()
	found := 0
	for i := uint64(0); i < n; i++ {
		v, ok, err := db.Get(fp(i))
		if err != nil {
			t.Fatalf("Get(%d) after recovery: %v", i, err)
		}
		if !ok {
			continue
		}
		if v != Value(i) {
			t.Fatalf("Get(%d) = %d after recovery, want %d (corrupt data served)", i, v, i)
		}
		found++
	}
	return found
}

func TestRecoveryQuarantinesTornPage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.shdb")
	const n = 3 * SlotsPerPage // bucket page + two overflow pages, all full
	crashDB(t, path, n)

	// Tear the first overflow page (page 2): smash bytes mid-page so its
	// CRC fails. The tail overflow page (page 3) becomes unreachable and
	// must be salvaged.
	f, err := openRW(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("torn write torn write"), 2*PageSize+200); err != nil {
		t.Fatal(err)
	}
	f.Close()

	db, err := Open(path, nil)
	if err != nil {
		t.Fatalf("Open after torn page = %v, want recovery to repair", err)
	}
	defer db.Close()

	rs := db.Recovery()
	if rs.Runs != 1 || rs.TornPages != 1 {
		t.Fatalf("Recovery() = %+v, want Runs=1 TornPages=1", rs)
	}
	if rs.OrphanPages != 1 || rs.SalvagedEntries != SlotsPerPage {
		t.Fatalf("Recovery() = %+v, want the severed tail page salvaged (OrphanPages=1, SalvagedEntries=%d)", rs, SlotsPerPage)
	}
	found := countSurvivors(t, db, n)
	if lost := int(n) - found; lost != SlotsPerPage {
		t.Fatalf("lost %d entries, want exactly the torn page's %d", lost, SlotsPerPage)
	}
	if db.Len() != found {
		t.Fatalf("Len = %d, want %d", db.Len(), found)
	}
	if err := db.Check(); err != nil {
		t.Fatalf("Check after recovery: %v", err)
	}

	// A second open is clean: recovery converged and committed.
	db.Close()
	db2, err := Open(path, nil)
	if err != nil {
		t.Fatalf("second Open: %v", err)
	}
	defer db2.Close()
	if rs := db2.Recovery(); rs.Runs != 0 {
		t.Fatalf("second open ran recovery again: %+v", rs)
	}
}

func TestRecoveryCutsDanglingLink(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dangle.shdb")
	const n = 2*SlotsPerPage + 10 // bucket + full overflow + partial overflow
	crashDB(t, path, n)

	// Rewrite the bucket page's next pointer to a page beyond the file,
	// with a valid CRC — the shape a lost file tail leaves behind. Both
	// overflow pages become unreachable and must be salvaged.
	f, err := openRW(path)
	if err != nil {
		t.Fatal(err)
	}
	page := make([]byte, PageSize)
	if _, err := f.ReadAt(page, PageSize); err != nil {
		t.Fatal(err)
	}
	setPageNext(page, 9999)
	binary.BigEndian.PutUint32(page[0:pageCRCSize], crc32.ChecksumIEEE(page[pageCRCSize:]))
	if _, err := f.WriteAt(page, PageSize); err != nil {
		t.Fatal(err)
	}
	f.Close()

	db, err := Open(path, nil)
	if err != nil {
		t.Fatalf("Open after dangling link = %v, want recovery to repair", err)
	}
	defer db.Close()

	rs := db.Recovery()
	if rs.RepairedLinks != 1 {
		t.Fatalf("Recovery() = %+v, want RepairedLinks=1", rs)
	}
	if rs.OrphanPages != 2 || rs.SalvagedEntries != n-SlotsPerPage {
		t.Fatalf("Recovery() = %+v, want both severed overflow pages salvaged", rs)
	}
	if found := countSurvivors(t, db, n); found != n {
		t.Fatalf("found %d entries, want all %d (salvage recovers severed tails)", found, n)
	}
	if err := db.Check(); err != nil {
		t.Fatalf("Check after recovery: %v", err)
	}
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tail.shdb")
	crashDB(t, path, 50)

	// Append half a page of garbage: a page write torn mid-append.
	f, err := openRW(path)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	garbage := make([]byte, PageSize/2)
	for i := range garbage {
		garbage[i] = byte(i)
	}
	if _, err := f.WriteAt(garbage, fi.Size()); err != nil {
		t.Fatal(err)
	}
	f.Close()

	db, err := Open(path, nil)
	if err != nil {
		t.Fatalf("Open after torn tail = %v, want recovery to truncate it", err)
	}
	defer db.Close()
	if rs := db.Recovery(); rs.TailBytes != PageSize/2 {
		t.Fatalf("Recovery() = %+v, want TailBytes=%d", rs, PageSize/2)
	}
	if found := countSurvivors(t, db, 50); found != 50 {
		t.Fatalf("found %d entries, want all 50", found)
	}
}

func TestHeaderSurvivesOneTornSlot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hdr.shdb")
	db, err := Create(path, Options{Buckets: 4})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := uint64(0); i < 100; i++ {
		db.Put(fp(i), Value(i))
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Tear each header slot in turn: with one slot destroyed the other
	// still describes a usable database.
	for _, off := range []int64{0, headerSlotStride} {
		f, err := openRW(path)
		if err != nil {
			t.Fatal(err)
		}
		saved := make([]byte, fileHdrSize)
		if _, err := f.ReadAt(saved, off); err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(make([]byte, fileHdrSize), off); err != nil {
			t.Fatal(err)
		}
		f.Close()

		db2, err := Open(path, nil)
		if err != nil {
			t.Fatalf("Open with slot at %d torn: %v", off, err)
		}
		for i := uint64(0); i < 100; i++ {
			if v, ok, err := db2.Get(fp(i)); err != nil || !ok || v != Value(i) {
				t.Fatalf("slot %d torn: Get(%d) = (%v, %v, %v)", off, i, v, ok, err)
			}
		}
		if err := db2.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		// Restore the slot for the next iteration.
		f, err = openRW(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(saved, off); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	// Both slots destroyed: nothing to recover from.
	f, err := openRW(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int64{0, headerSlotStride} {
		if _, err := f.WriteAt(make([]byte, fileHdrSize), off); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	_, err = Open(path, nil)
	var corrupt *CorruptionError
	if !errors.As(err, &corrupt) {
		t.Fatalf("Open with both header slots torn = %v, want CorruptionError", err)
	}
}

// TestReopenMatrix pins that every mutation kind survives a clean
// Close/Open cycle, twice over: PutBatch creates, Put updates, Delete
// removes.
func TestReopenMatrix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reopen.shdb")
	db, err := Create(path, Options{ExpectedItems: 1000})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	const n = 400
	want := make(map[uint64]Value, n)

	pairs := make([]Pair, n)
	for i := uint64(0); i < n; i++ {
		pairs[i] = Pair{FP: fp(i), Val: Value(i)}
		want[i] = Value(i)
	}
	if _, _, err := db.PutBatch(context.Background(), pairs); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}

	for cycle := 0; cycle < 2; cycle++ {
		// Update a band, delete a band, insert a fresh band.
		base := uint64(cycle * 1000)
		for i := uint64(0); i < 50; i++ {
			v := Value(7000 + base + i)
			if _, err := db.Put(fp(i), v); err != nil {
				t.Fatalf("Put update: %v", err)
			}
			want[i] = v
		}
		for i := uint64(100); i < 120; i++ {
			if _, err := db.Delete(fp(i)); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			delete(want, i)
		}
		fresh := make([]Pair, 30)
		for i := range fresh {
			k := n + base + uint64(i)
			fresh[i] = Pair{FP: fp(k), Val: Value(k)}
			want[k] = Value(k)
		}
		if _, _, err := db.PutBatch(context.Background(), fresh); err != nil {
			t.Fatalf("PutBatch fresh: %v", err)
		}

		if err := db.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		db, err = Open(path, nil)
		if err != nil {
			t.Fatalf("Open cycle %d: %v", cycle, err)
		}
		if rs := db.Recovery(); rs.Runs != 0 {
			t.Fatalf("clean reopen ran recovery: %+v", rs)
		}
		if db.Len() != len(want) {
			t.Fatalf("cycle %d: Len = %d, want %d", cycle, db.Len(), len(want))
		}
		for k, v := range want {
			got, ok, err := db.Get(fp(k))
			if err != nil || !ok || got != v {
				t.Fatalf("cycle %d: Get(%d) = (%v, %v, %v), want %d", cycle, k, got, ok, err, v)
			}
		}
		for i := uint64(100); i < 120; i++ {
			if _, ok, _ := db.Get(fp(i)); ok {
				t.Fatalf("cycle %d: deleted entry %d resurrected by reopen", cycle, i)
			}
		}
	}
	db.Close()
}

// TestChecksumDetectsCorruptionBatch pins the CRC contract recovery
// builds on, for the batched read path: a byte flip in a clean file makes
// GetBatch fail with a checksum error — it never returns garbage.
func TestChecksumDetectsCorruptionBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flip.shdb")
	db, err := Create(path, Options{Buckets: 1})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := uint64(0); i < 50; i++ {
		db.Put(fp(i), Value(i))
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	f, err := openRW(path)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	off := int64(PageSize) + 300
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x55
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	db2, err := Open(path, nil) // clean header: no recovery, flip undetected until read
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db2.Close()
	var corrupt *CorruptionError
	_, _, gerr := db2.GetBatch(context.Background(), []fingerprint.Fingerprint{fp(1), fp(2), fp(3)})
	if !errors.As(gerr, &corrupt) {
		t.Fatalf("GetBatch on corrupted page = %v, want CorruptionError", gerr)
	}
}

// Ensure a corrupted file left dirty also recovers instead of erroring:
// the same byte flip plus an unclean header exercises quarantine on a
// bucket page (its chain tail, if any, is salvaged).
func TestRecoveryAfterByteFlipOnDirtyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flipdirty.shdb")
	crashDB(t, path, 60)

	f, err := openRW(path)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	off := int64(PageSize) + 64
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xAA
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	db, err := Open(path, nil)
	if err != nil {
		t.Fatalf("Open after byte flip on dirty file = %v, want recovery", err)
	}
	defer db.Close()
	if rs := db.Recovery(); rs.TornPages != 1 {
		t.Fatalf("Recovery() = %+v, want TornPages=1", rs)
	}
	countSurvivors(t, db, 60) // values of survivors must be exact
	if err := db.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}
