// Package hashdb implements the persistent fingerprint hash table each SHHC
// node keeps on its SSD.
//
// The paper stores this table in Berkeley DB ("The hash table is stored on
// the SSD as a Berkeley DB"); hashdb is a from-scratch equivalent tuned to
// the same access pattern: point lookups and inserts of fixed-size
// <fingerprint, locator> records, dominated by one random 4 KB page read
// per probe. The file is a classic static-bucket hash table:
//
//	page 0:                 header (magic, geometry, entry count, clean flag)
//	pages 1..buckets:       bucket pages, addressed by fingerprint prefix
//	pages buckets+1..:      overflow pages chained from full buckets
//
// Every physical page read/write is charged to a device.Device so the
// store's latency follows the configured hardware model (SSD in the paper's
// deployment, HDD for the disk-index baseline).
package hashdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"shhc/internal/device"
	"shhc/internal/fingerprint"
)

// Value is the 8-byte locator stored per fingerprint (e.g. the container or
// object ID holding the chunk in cloud storage).
type Value uint64

const (
	// PageSize is the I/O unit; matches common flash page/sector sizing.
	PageSize = 4096

	magic   = "SHDB"
	version = 2

	// page layout: crc32 uint32 | count uint16 | next uint64 | entries...
	// The CRC covers everything after itself and detects torn writes and
	// media corruption on read.
	pageCRCSize = 4
	pageHdrSize = pageCRCSize + 2 + 8
	entrySize   = fingerprint.Size + 8
	// SlotsPerPage is the number of entries a bucket/overflow page holds.
	SlotsPerPage = (PageSize - pageHdrSize) / entrySize

	// file header layout (in page 0):
	// magic(4) version(4) pageSize(4) buckets(8) entries(8) pages(8) clean(1)
	fileHdrSize = 4 + 4 + 4 + 8 + 8 + 8 + 1
)

// ErrClosed is returned by operations on a closed database.
var ErrClosed = errors.New("hashdb: database is closed")

// CorruptionError reports a structural inconsistency found in the file.
type CorruptionError struct {
	Path   string
	Detail string
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("hashdb: %s: corrupt database: %s", e.Path, e.Detail)
}

// Options configures database creation.
type Options struct {
	// ExpectedItems sizes the bucket region for ~50% initial fill so most
	// lookups cost a single page read. Defaults to 1<<20.
	ExpectedItems int
	// Buckets overrides the computed bucket count directly (testing and
	// sizing experiments). If zero it is derived from ExpectedItems.
	Buckets uint64
	// Device charges modeled latency per page I/O. Defaults to a
	// non-sleeping SSD accountant.
	Device *device.Device
}

func (o *Options) fill() {
	if o.ExpectedItems <= 0 {
		o.ExpectedItems = 1 << 20
	}
	if o.Buckets == 0 {
		// Target half-full bucket pages at the expected load.
		perBucket := SlotsPerPage / 2
		o.Buckets = uint64((o.ExpectedItems + perBucket - 1) / perBucket)
		if o.Buckets == 0 {
			o.Buckets = 1
		}
	}
	if o.Device == nil {
		o.Device = device.New(device.SSD, device.Account)
	}
}

// DB is an on-disk hash table from fingerprint to Value.
// All methods are safe for concurrent use.
type DB struct {
	mu      sync.RWMutex
	f       *os.File
	path    string
	dev     *device.Device
	buckets uint64
	entries uint64
	pages   uint64 // total pages including header
	dirty   bool   // header on disk says unclean
	closed  bool

	// chain statistics, maintained on writes for diagnostics
	overflowPages uint64
}

// Create creates a new database file at path, failing if it exists.
func Create(path string, opts Options) (*DB, error) {
	opts.fill()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("hashdb: create %s: %w", path, err)
	}
	db := &DB{
		f:       f,
		path:    path,
		dev:     opts.Device,
		buckets: opts.Buckets,
		pages:   1 + opts.Buckets,
	}
	// Zero-fill header + bucket region so bucket pages read back as empty.
	if err := f.Truncate(int64(db.pages) * PageSize); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("hashdb: create %s: %w", path, err)
	}
	if err := db.writeHeader(true); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return db, nil
}

// Open opens an existing database. If the file was not closed cleanly, Open
// recovers by rescanning the pages to recompute the entry count.
func Open(path string, dev *device.Device) (*DB, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("hashdb: open %s: %w", path, err)
	}
	if dev == nil {
		dev = device.New(device.SSD, device.Account)
	}
	db := &DB{f: f, path: path, dev: dev}
	if err := db.readHeader(); err != nil {
		f.Close()
		return nil, err
	}
	if db.dirty {
		if err := db.recover(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return db, nil
}

func (db *DB) writeHeader(clean bool) error {
	var buf [fileHdrSize]byte
	copy(buf[0:4], magic)
	binary.BigEndian.PutUint32(buf[4:8], version)
	binary.BigEndian.PutUint32(buf[8:12], PageSize)
	binary.BigEndian.PutUint64(buf[12:20], db.buckets)
	binary.BigEndian.PutUint64(buf[20:28], db.entries)
	binary.BigEndian.PutUint64(buf[28:36], db.pages)
	if clean {
		buf[36] = 1
	}
	db.dev.Write(len(buf))
	if _, err := db.f.WriteAt(buf[:], 0); err != nil {
		return fmt.Errorf("hashdb: %s: write header: %w", db.path, err)
	}
	db.dirty = !clean
	return nil
}

func (db *DB) readHeader() error {
	var buf [fileHdrSize]byte
	db.dev.Read(len(buf))
	if _, err := db.f.ReadAt(buf[:], 0); err != nil {
		return fmt.Errorf("hashdb: %s: read header: %w", db.path, err)
	}
	if string(buf[0:4]) != magic {
		return &CorruptionError{Path: db.path, Detail: "bad magic"}
	}
	if v := binary.BigEndian.Uint32(buf[4:8]); v != version {
		return &CorruptionError{Path: db.path, Detail: fmt.Sprintf("unsupported version %d", v)}
	}
	if ps := binary.BigEndian.Uint32(buf[8:12]); ps != PageSize {
		return &CorruptionError{Path: db.path, Detail: fmt.Sprintf("page size %d, want %d", ps, PageSize)}
	}
	db.buckets = binary.BigEndian.Uint64(buf[12:20])
	db.entries = binary.BigEndian.Uint64(buf[20:28])
	db.pages = binary.BigEndian.Uint64(buf[28:36])
	db.dirty = buf[36] == 0
	if db.buckets == 0 || db.pages < 1+db.buckets {
		return &CorruptionError{Path: db.path, Detail: "inconsistent geometry"}
	}
	return nil
}

// recover rescans every page after an unclean shutdown, recomputing the
// entry count, page count, and overflow statistics from the file itself.
func (db *DB) recover() error {
	fi, err := db.f.Stat()
	if err != nil {
		return fmt.Errorf("hashdb: %s: recover: %w", db.path, err)
	}
	db.pages = uint64(fi.Size()) / PageSize
	if db.pages < 1+db.buckets {
		return &CorruptionError{Path: db.path, Detail: "file truncated below bucket region"}
	}
	var entries, overflow uint64
	page := make([]byte, PageSize)
	for p := uint64(1); p < db.pages; p++ {
		if err := db.readPage(p, page); err != nil {
			return err
		}
		count := pageCount(page)
		if count > SlotsPerPage {
			return &CorruptionError{Path: db.path, Detail: fmt.Sprintf("page %d count %d exceeds capacity", p, count)}
		}
		entries += uint64(count)
		if p > db.buckets {
			overflow++
		}
	}
	db.entries = entries
	db.overflowPages = overflow
	return db.writeHeader(true)
}

func (db *DB) readPage(p uint64, buf []byte) error {
	db.dev.Read(PageSize)
	if _, err := db.f.ReadAt(buf, int64(p)*PageSize); err != nil {
		return fmt.Errorf("hashdb: %s: read page %d: %w", db.path, p, err)
	}
	stored := binary.BigEndian.Uint32(buf[0:pageCRCSize])
	if stored == 0 && isZeroPage(buf[pageCRCSize:]) {
		// Never-written bucket page from the initial truncate: valid and
		// empty by construction.
		return nil
	}
	if got := crc32.ChecksumIEEE(buf[pageCRCSize:]); got != stored {
		return &CorruptionError{
			Path:   db.path,
			Detail: fmt.Sprintf("page %d checksum mismatch (stored %08x, computed %08x)", p, stored, got),
		}
	}
	return nil
}

func isZeroPage(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

func (db *DB) writePage(p uint64, buf []byte) error {
	binary.BigEndian.PutUint32(buf[0:pageCRCSize], crc32.ChecksumIEEE(buf[pageCRCSize:]))
	db.dev.Write(PageSize)
	if _, err := db.f.WriteAt(buf, int64(p)*PageSize); err != nil {
		return fmt.Errorf("hashdb: %s: write page %d: %w", db.path, p, err)
	}
	return nil
}

// markDirty lazily flips the on-disk clean flag before the first mutation
// after open/sync, so a crash is detectable.
func (db *DB) markDirty() error {
	if db.dirty {
		return nil
	}
	return db.writeHeader(false)
}

func (db *DB) bucketPage(fp fingerprint.Fingerprint) uint64 {
	return 1 + fp.Prefix64()%db.buckets
}

func pageCount(page []byte) int {
	return int(binary.BigEndian.Uint16(page[pageCRCSize : pageCRCSize+2]))
}
func pageNext(page []byte) uint64 {
	return binary.BigEndian.Uint64(page[pageCRCSize+2 : pageCRCSize+10])
}
func setPageCount(page []byte, n int) {
	binary.BigEndian.PutUint16(page[pageCRCSize:pageCRCSize+2], uint16(n))
}
func setPageNext(page []byte, p uint64) {
	binary.BigEndian.PutUint64(page[pageCRCSize+2:pageCRCSize+10], p)
}

func entryAt(page []byte, i int) (fingerprint.Fingerprint, Value) {
	off := pageHdrSize + i*entrySize
	var fp fingerprint.Fingerprint
	copy(fp[:], page[off:off+fingerprint.Size])
	return fp, Value(binary.BigEndian.Uint64(page[off+fingerprint.Size : off+entrySize]))
}

func setEntryAt(page []byte, i int, fp fingerprint.Fingerprint, v Value) {
	off := pageHdrSize + i*entrySize
	copy(page[off:], fp[:])
	binary.BigEndian.PutUint64(page[off+fingerprint.Size:off+entrySize], uint64(v))
}

// Get returns the value stored for fp.
func (db *DB) Get(fp fingerprint.Fingerprint) (Value, bool, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return 0, false, ErrClosed
	}
	page := make([]byte, PageSize)
	for p := db.bucketPage(fp); p != 0; {
		if err := db.readPage(p, page); err != nil {
			return 0, false, err
		}
		n := pageCount(page)
		for i := 0; i < n; i++ {
			efp, v := entryAt(page, i)
			if efp == fp {
				return v, true, nil
			}
		}
		p = pageNext(page)
	}
	return 0, false, nil
}

// Has reports whether fp is stored, at the same I/O cost as Get.
func (db *DB) Has(fp fingerprint.Fingerprint) (bool, error) {
	_, ok, err := db.Get(fp)
	return ok, err
}

// Put stores fp -> v, overwriting any previous value. It reports whether a
// new entry was created (false means an existing entry was updated).
func (db *DB) Put(fp fingerprint.Fingerprint, v Value) (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return false, ErrClosed
	}
	if err := db.markDirty(); err != nil {
		return false, err
	}

	page := make([]byte, PageSize)
	var (
		freePage  uint64 // first page in chain with a free slot
		freePg    []byte
		lastPage  uint64 // tail of the chain, for linking a new overflow
		lastPg    []byte
		chainHops int
	)
	for p := db.bucketPage(fp); p != 0; {
		if err := db.readPage(p, page); err != nil {
			return false, err
		}
		n := pageCount(page)
		for i := 0; i < n; i++ {
			efp, _ := entryAt(page, i)
			if efp == fp {
				setEntryAt(page, i, fp, v)
				return false, db.writePage(p, page)
			}
		}
		if n < SlotsPerPage && freePg == nil {
			freePage = p
			freePg = append([]byte(nil), page...)
		}
		lastPage = p
		lastPg = append(lastPg[:0], page...)
		chainHops++
		p = pageNext(page)
	}

	if freePg != nil {
		n := pageCount(freePg)
		setEntryAt(freePg, n, fp, v)
		setPageCount(freePg, n+1)
		if err := db.writePage(freePage, freePg); err != nil {
			return false, err
		}
		db.entries++
		return true, nil
	}

	// Whole chain full: allocate an overflow page at EOF and link it.
	newPage := db.pages
	fresh := make([]byte, PageSize)
	setEntryAt(fresh, 0, fp, v)
	setPageCount(fresh, 1)
	if err := db.writePage(newPage, fresh); err != nil {
		return false, err
	}
	setPageNext(lastPg, newPage)
	if err := db.writePage(lastPage, lastPg); err != nil {
		return false, err
	}
	db.pages++
	db.overflowPages++
	db.entries++
	_ = chainHops
	return true, nil
}

// Delete removes fp, reporting whether it was present. The slot is filled
// by the page's last entry so pages stay dense.
func (db *DB) Delete(fp fingerprint.Fingerprint) (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return false, ErrClosed
	}
	page := make([]byte, PageSize)
	for p := db.bucketPage(fp); p != 0; {
		if err := db.readPage(p, page); err != nil {
			return false, err
		}
		n := pageCount(page)
		for i := 0; i < n; i++ {
			efp, _ := entryAt(page, i)
			if efp != fp {
				continue
			}
			if err := db.markDirty(); err != nil {
				return false, err
			}
			if i != n-1 {
				lfp, lv := entryAt(page, n-1)
				setEntryAt(page, i, lfp, lv)
			}
			setPageCount(page, n-1)
			if err := db.writePage(p, page); err != nil {
				return false, err
			}
			db.entries--
			return true, nil
		}
		p = pageNext(page)
	}
	return false, nil
}

// Len returns the number of stored entries.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return int(db.entries)
}

// Range calls fn for every entry until fn returns false or an error occurs.
// The iteration order is physical (bucket page order), not key order.
func (db *DB) Range(fn func(fp fingerprint.Fingerprint, v Value) bool) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return ErrClosed
	}
	page := make([]byte, PageSize)
	for p := uint64(1); p < db.pages; p++ {
		if err := db.readPage(p, page); err != nil {
			return err
		}
		n := pageCount(page)
		for i := 0; i < n; i++ {
			fp, v := entryAt(page, i)
			if !fn(fp, v) {
				return nil
			}
		}
	}
	return nil
}

// Sync flushes the header (marking the file clean) and fsyncs.
func (db *DB) Sync() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if err := db.writeHeader(true); err != nil {
		return err
	}
	if err := db.f.Sync(); err != nil {
		return fmt.Errorf("hashdb: %s: sync: %w", db.path, err)
	}
	return nil
}

// Close syncs and closes the database.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	err := db.writeHeader(true)
	if serr := db.f.Sync(); err == nil && serr != nil {
		err = fmt.Errorf("hashdb: %s: sync: %w", db.path, serr)
	}
	if cerr := db.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("hashdb: %s: close: %w", db.path, cerr)
	}
	db.closed = true
	return err
}

// CloseWithoutSync abandons the file without marking it clean, simulating a
// crash. The next Open runs recovery. Intended for failure-injection tests.
func (db *DB) CloseWithoutSync() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	db.closed = true
	if err := db.f.Close(); err != nil {
		return fmt.Errorf("hashdb: %s: close: %w", db.path, err)
	}
	return nil
}

// Stats describes the physical shape of the database.
type Stats struct {
	Entries       uint64
	Buckets       uint64
	Pages         uint64
	OverflowPages uint64
	// LoadFactor is entries / total bucket-region slots.
	LoadFactor float64
	Device     device.Stats
}

// Stats returns a snapshot of the database's shape and device usage.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	lf := 0.0
	if db.buckets > 0 {
		lf = float64(db.entries) / float64(db.buckets*SlotsPerPage)
	}
	return Stats{
		Entries:       db.entries,
		Buckets:       db.buckets,
		Pages:         db.pages,
		OverflowPages: db.overflowPages,
		LoadFactor:    lf,
		Device:        db.dev.Stats(),
	}
}

// Device returns the device the store charges its I/O to.
func (db *DB) Device() *device.Device { return db.dev }

// Path returns the file path of the database.
func (db *DB) Path() string { return db.path }

var _ io.Closer = (*DB)(nil)
