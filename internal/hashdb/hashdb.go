// Package hashdb implements the persistent fingerprint hash table each SHHC
// node keeps on its SSD.
//
// The paper stores this table in Berkeley DB ("The hash table is stored on
// the SSD as a Berkeley DB"); hashdb is a from-scratch equivalent tuned to
// the same access pattern: point lookups and inserts of fixed-size
// <fingerprint, locator> records, dominated by one random 4 KB page read
// per probe. The file is a classic static-bucket hash table:
//
//	page 0:                 header (magic, geometry, entry count, clean flag)
//	pages 1..buckets:       bucket pages, addressed by fingerprint prefix
//	pages buckets+1..:      overflow pages chained from full buckets
//
// Every physical page read/write is charged to a device.Device so the
// store's latency follows the configured hardware model (SSD in the paper's
// deployment, HDD for the disk-index baseline).
package hashdb

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"shhc/internal/device"
	"shhc/internal/fingerprint"
	"shhc/internal/pow2"
)

// Value is the 8-byte locator stored per fingerprint (e.g. the container or
// object ID holding the chunk in cloud storage).
type Value uint64

const (
	// PageSize is the I/O unit; matches common flash page/sector sizing.
	PageSize = 4096

	magic   = "SHDB"
	version = 3

	// page layout: crc32 uint32 | count uint16 | next uint64 | entries...
	// The CRC covers everything after itself and detects torn writes and
	// media corruption on read.
	pageCRCSize = 4
	pageHdrSize = pageCRCSize + 2 + 8
	entrySize   = fingerprint.Size + 8
	// SlotsPerPage is the number of entries a bucket/overflow page holds.
	SlotsPerPage = (PageSize - pageHdrSize) / entrySize

	// file header layout. Page 0 holds two header slots at offsets 0 and
	// headerSlotStride; writeHeader alternates between them by sequence
	// number, so a torn header write can destroy at most one slot and the
	// other still describes a consistent (if slightly stale) state. Each
	// slot:
	//
	//	crc32(4) magic(4) version(4) pageSize(4) buckets(8) entries(8)
	//	pages(8) clean(1) seq(8)
	//
	// The CRC covers everything after itself.
	fileHdrSize      = 4 + 4 + 4 + 4 + 8 + 8 + 8 + 1 + 8
	headerSlotStride = 512
)

// ErrClosed is returned by operations on a closed database.
var ErrClosed = errors.New("hashdb: database is closed")

// CorruptionError reports a structural inconsistency found in the file.
type CorruptionError struct {
	Path   string
	Detail string
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("hashdb: %s: corrupt database: %s", e.Path, e.Detail)
}

// Options configures database creation.
type Options struct {
	// ExpectedItems sizes the bucket region for ~50% initial fill so most
	// lookups cost a single page read. Defaults to 1<<20.
	ExpectedItems int
	// Buckets overrides the computed bucket count directly (testing and
	// sizing experiments). If zero it is derived from ExpectedItems.
	Buckets uint64
	// Stripes is the number of bucket-region lock stripes (rounded to a
	// power of two). A stripe is a runtime construct, not persisted in the
	// file. 0 selects the default; 1 recovers a single global lock.
	Stripes int
	// Device charges modeled latency per page I/O. Defaults to a
	// non-sleeping SSD accountant.
	Device *device.Device
}

func (o *Options) fill() {
	if o.ExpectedItems <= 0 {
		o.ExpectedItems = 1 << 20
	}
	if o.Buckets == 0 {
		// Target half-full bucket pages at the expected load.
		perBucket := SlotsPerPage / 2
		o.Buckets = uint64((o.ExpectedItems + perBucket - 1) / perBucket)
		if o.Buckets == 0 {
			o.Buckets = 1
		}
	}
	if o.Device == nil {
		o.Device = device.New(device.SSD, device.Account)
	}
}

// defaultStripes is the default lock-stripe count (power of two). 64 is
// enough to keep stripe collisions rare at any realistic GOMAXPROCS while
// the all-stripe operations (Sync, Range, Close) stay cheap.
const defaultStripes = 64

// dbStripe guards a slice of the bucket space: bucket b belongs to stripe
// b & (len(stripes)-1). Overflow pages are reached only through their
// bucket's chain, so a chain — bucket page plus its overflow pages — is
// covered entirely by one stripe lock.
type dbStripe struct {
	mu sync.RWMutex
	_  [40]byte // keep neighboring stripe locks off one cache line
}

// File is the backing-file contract DB needs. *os.File satisfies it; tests
// inject failpoint wrappers (see FailFile) to tear writes at arbitrary
// byte offsets.
type File interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
	Sync() error
	Close() error
}

// DB is an on-disk hash table from fingerprint to Value.
//
// All methods are safe for concurrent use. The bucket space is split over
// power-of-two lock stripes so probes of different buckets proceed in
// parallel; page allocation (file growth) and header writes serialize on a
// separate allocation mutex, which lookups never touch.
type DB struct {
	f          File
	path       string
	dev        *device.Device
	buckets    uint64
	stripes    []dbStripe
	stripeMask uint64

	// allocMu serializes page allocation (growing the file) and header
	// state transitions. Lock order: stripe lock, then allocMu; allocMu
	// never acquires stripe locks.
	allocMu sync.Mutex

	entries       atomic.Uint64
	pages         atomic.Uint64 // total pages including header
	overflowPages atomic.Uint64 // chain statistics, for diagnostics
	dirty         atomic.Bool   // header on disk says unclean
	// headerSeq is the sequence number of the newest on-disk header slot;
	// writeHeader bumps it and writes slot seq%2. Guarded by the same
	// quiescence discipline as writeHeader itself.
	headerSeq uint64
	// recovery summarizes the open-time repair pass. Written only while
	// Open runs single-threaded, immutable afterwards.
	recovery RecoveryStats

	// Chain-degradation telemetry, recorded by every write-path chain
	// walk: the longest chain seen and a histogram of observed chain
	// lengths (bucket i counts chains of i+1 pages, the last clamps).
	maxChain  atomic.Uint64
	chainHist [chainHistBuckets]atomic.Uint64
	// closed is written with every stripe write-locked and read under any
	// stripe lock, so each operation observes it coherently.
	closed bool
}

// chainHistBuckets sizes the observed chain-length histogram; chains of
// chainHistBuckets or more pages clamp into the last bucket.
const chainHistBuckets = 8

// observeChain records one write-path walk of a chain of n pages.
func (db *DB) observeChain(n int) {
	if n <= 0 {
		return
	}
	b := n - 1
	if b >= chainHistBuckets {
		b = chainHistBuckets - 1
	}
	db.chainHist[b].Add(1)
	for {
		cur := db.maxChain.Load()
		if uint64(n) <= cur || db.maxChain.CompareAndSwap(cur, uint64(n)) {
			break
		}
	}
}

func newStripes(n int) []dbStripe {
	if n <= 0 {
		n = defaultStripes
	}
	return make([]dbStripe, pow2.Floor(n))
}

// stripeFor returns the lock stripe owning fp's bucket chain.
func (db *DB) stripeFor(fp fingerprint.Fingerprint) *dbStripe {
	return &db.stripes[(fp.Prefix64()%db.buckets)&db.stripeMask]
}

// Create creates a new database file at path, failing if it exists.
func Create(path string, opts Options) (*DB, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("hashdb: create %s: %w", path, err)
	}
	return CreateFile(f, path, opts)
}

// CreateFile is Create over an injected, freshly created backing file
// (alternate I/O backends such as directio, testing). path names the file
// in messages and is removed when initialization fails. CreateFile takes
// ownership of f.
func CreateFile(f File, path string, opts Options) (*DB, error) {
	opts.fill()
	db := &DB{
		f:       f,
		path:    path,
		dev:     opts.Device,
		buckets: opts.Buckets,
		stripes: newStripes(opts.Stripes),
	}
	db.stripeMask = uint64(len(db.stripes) - 1)
	db.pages.Store(1 + opts.Buckets)
	// Zero-fill header + bucket region so bucket pages read back as empty.
	if err := f.Truncate(int64(db.pages.Load()) * PageSize); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("hashdb: create %s: %w", path, err)
	}
	if err := db.writeHeader(true); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return db, nil
}

// Open opens an existing database. If the file was not closed cleanly, Open
// runs the recovery pass (see recovery.go): torn pages are quarantined,
// dangling overflow links cut, orphaned chain tails salvaged, and the
// counters recomputed, so an unclean file never fails Open permanently.
func Open(path string, dev *device.Device) (*DB, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("hashdb: open %s: %w", path, err)
	}
	return OpenFile(f, path, dev)
}

// OpenFile is Open over an injected backing file (testing and failure
// injection; see FailFile). path is used for messages only. OpenFile takes
// ownership of f and closes it when opening fails.
func OpenFile(f File, path string, dev *device.Device) (*DB, error) {
	if dev == nil {
		dev = device.New(device.SSD, device.Account)
	}
	db := &DB{f: f, path: path, dev: dev, stripes: newStripes(0)}
	db.stripeMask = uint64(len(db.stripes) - 1)
	if err := db.readHeader(); err != nil {
		f.Close()
		return nil, err
	}
	if db.dirty.Load() {
		if err := db.recover(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return db, nil
}

// writeHeader persists the file header into the slot the bumped sequence
// number selects, so a torn header write can destroy at most one of the two
// slots. Callers must hold allocMu or have otherwise quiesced mutators
// (Create/recover run single-threaded; Sync and Close hold every stripe
// write lock).
func (db *DB) writeHeader(clean bool) error {
	seq := db.headerSeq + 1
	var buf [fileHdrSize]byte
	copy(buf[4:8], magic)
	binary.BigEndian.PutUint32(buf[8:12], version)
	binary.BigEndian.PutUint32(buf[12:16], PageSize)
	binary.BigEndian.PutUint64(buf[16:24], db.buckets)
	binary.BigEndian.PutUint64(buf[24:32], db.entries.Load())
	binary.BigEndian.PutUint64(buf[32:40], db.pages.Load())
	if clean {
		buf[40] = 1
	}
	binary.BigEndian.PutUint64(buf[41:49], seq)
	binary.BigEndian.PutUint32(buf[0:4], crc32.ChecksumIEEE(buf[4:]))
	db.dev.Write(len(buf))
	if _, err := db.f.WriteAt(buf[:], int64(seq%2)*headerSlotStride); err != nil {
		return fmt.Errorf("hashdb: %s: write header: %w", db.path, err)
	}
	db.headerSeq = seq
	// Writing a *dirty* header must NOT publish db.dirty here: markDirty's
	// lock-free fast path reads it, and a mutator that saw it true would
	// write pages while the mark is still only in the OS page cache — a
	// crash could then persist the torn page but not the mark. markDirty
	// publishes the flag itself, after its fsync returns.
	if clean {
		db.dirty.Store(false)
	}
	return nil
}

// decodeHeaderSlot validates one header slot, returning its sequence number
// and clean flag after loading the geometry fields into db.
func (db *DB) decodeHeaderSlot(buf []byte) (seq uint64, clean bool, ok bool) {
	if crc32.ChecksumIEEE(buf[4:]) != binary.BigEndian.Uint32(buf[0:4]) {
		return 0, false, false
	}
	if string(buf[4:8]) != magic {
		return 0, false, false
	}
	if v := binary.BigEndian.Uint32(buf[8:12]); v != version {
		return 0, false, false
	}
	if ps := binary.BigEndian.Uint32(buf[12:16]); ps != PageSize {
		return 0, false, false
	}
	db.buckets = binary.BigEndian.Uint64(buf[16:24])
	db.entries.Store(binary.BigEndian.Uint64(buf[24:32]))
	db.pages.Store(binary.BigEndian.Uint64(buf[32:40]))
	return binary.BigEndian.Uint64(buf[41:49]), buf[40] == 1, true
}

func (db *DB) readHeader() error {
	var slots [2][fileHdrSize]byte
	db.dev.Read(fileHdrSize)
	if _, err := db.f.ReadAt(slots[0][:], 0); err != nil {
		return fmt.Errorf("hashdb: %s: read header: %w", db.path, err)
	}
	// The second slot may not exist yet in a file torn during Create.
	if _, err := db.f.ReadAt(slots[1][:], headerSlotStride); err != nil && !errors.Is(err, io.EOF) {
		return fmt.Errorf("hashdb: %s: read header: %w", db.path, err)
	}
	best := -1
	var bestSeq uint64
	for i := range slots {
		if seq, _, ok := db.decodeHeaderSlot(slots[i][:]); ok && (best < 0 || seq > bestSeq) {
			best, bestSeq = i, seq
		}
	}
	if best < 0 {
		if string(slots[0][0:4]) == magic {
			// Pre-v3 layout: magic first, no CRC, single slot. Not
			// corruption — a format mismatch, reported as such.
			return &CorruptionError{Path: db.path, Detail: fmt.Sprintf("unsupported pre-crash-safe header layout (file version %d)", binary.BigEndian.Uint32(slots[0][4:8]))}
		}
		return &CorruptionError{Path: db.path, Detail: "no valid header slot"}
	}
	// Re-decode the winner so its geometry is what sticks.
	seq, clean, _ := db.decodeHeaderSlot(slots[best][:])
	db.headerSeq = seq
	db.dirty.Store(!clean)
	if db.buckets == 0 || db.pages.Load() < 1+db.buckets {
		return &CorruptionError{Path: db.path, Detail: "inconsistent geometry"}
	}
	return nil
}

func (db *DB) readPage(p uint64, buf []byte) error {
	db.dev.Read(PageSize)
	if _, err := db.f.ReadAt(buf, int64(p)*PageSize); err != nil {
		return fmt.Errorf("hashdb: %s: read page %d: %w", db.path, p, err)
	}
	stored := binary.BigEndian.Uint32(buf[0:pageCRCSize])
	if stored == 0 && isZeroPage(buf[pageCRCSize:]) {
		// Never-written bucket page from the initial truncate: valid and
		// empty by construction.
		return nil
	}
	if got := crc32.ChecksumIEEE(buf[pageCRCSize:]); got != stored {
		return &CorruptionError{
			Path:   db.path,
			Detail: fmt.Sprintf("page %d checksum mismatch (stored %08x, computed %08x)", p, stored, got),
		}
	}
	return nil
}

func isZeroPage(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

func (db *DB) writePage(p uint64, buf []byte) error {
	binary.BigEndian.PutUint32(buf[0:pageCRCSize], crc32.ChecksumIEEE(buf[pageCRCSize:]))
	db.dev.Write(PageSize)
	if _, err := db.f.WriteAt(buf, int64(p)*PageSize); err != nil {
		return fmt.Errorf("hashdb: %s: write page %d: %w", db.path, p, err)
	}
	return nil
}

// markDirty lazily flips the on-disk clean flag before the first mutation
// after open/sync, so a crash is detectable. The flag is fsynced before
// markDirty returns: were the mark allowed to reorder behind later page
// writes, a crash could leave torn pages in a file whose header still says
// clean, and Open would skip the recovery pass that repairs them.
// Concurrent mutators race to the fast path; the loser of the allocMu
// handoff sees dirty already set.
func (db *DB) markDirty() error {
	if db.dirty.Load() {
		return nil
	}
	db.allocMu.Lock()
	defer db.allocMu.Unlock()
	if db.dirty.Load() {
		return nil
	}
	if err := db.writeHeader(false); err != nil {
		return err
	}
	if err := db.f.Sync(); err != nil {
		return fmt.Errorf("hashdb: %s: sync dirty mark: %w", db.path, err)
	}
	// Only now may other mutators take the fast path: the mark is durable,
	// so any page they tear will be flagged for recovery at the next open.
	db.dirty.Store(true)
	return nil
}

// pagePool recycles 4 KB page buffers across probes; the hot path would
// otherwise allocate one per lookup. The pool holds *[PageSize]byte, not
// []byte: a pointer fits an interface value without allocating, whereas a
// slice header gets boxed on every Put — an allocation on the exact path
// the pool exists to remove. Pages are always full-size, so the
// slice↔array-pointer conversions are total.
var pagePool = sync.Pool{New: func() any { return new([PageSize]byte) }}

// getPage acquires a pooled page; release it with putPage.
//
//shhc:returns-buf
func getPage() []byte { return pagePool.Get().(*[PageSize]byte)[:] }

// putPage returns a page acquired from getPage to the pool.
//
//shhc:takes-buf b
func putPage(b []byte) { pagePool.Put((*[PageSize]byte)(b)) }

func (db *DB) bucketPage(fp fingerprint.Fingerprint) uint64 {
	return 1 + fp.Prefix64()%db.buckets
}

func pageCount(page []byte) int {
	return int(binary.BigEndian.Uint16(page[pageCRCSize : pageCRCSize+2]))
}
func pageNext(page []byte) uint64 {
	return binary.BigEndian.Uint64(page[pageCRCSize+2 : pageCRCSize+10])
}
func setPageCount(page []byte, n int) {
	binary.BigEndian.PutUint16(page[pageCRCSize:pageCRCSize+2], uint16(n))
}
func setPageNext(page []byte, p uint64) {
	binary.BigEndian.PutUint64(page[pageCRCSize+2:pageCRCSize+10], p)
}

func entryAt(page []byte, i int) (fingerprint.Fingerprint, Value) {
	off := pageHdrSize + i*entrySize
	var fp fingerprint.Fingerprint
	copy(fp[:], page[off:off+fingerprint.Size])
	return fp, Value(binary.BigEndian.Uint64(page[off+fingerprint.Size : off+entrySize]))
}

func setEntryAt(page []byte, i int, fp fingerprint.Fingerprint, v Value) {
	off := pageHdrSize + i*entrySize
	copy(page[off:], fp[:])
	binary.BigEndian.PutUint64(page[off+fingerprint.Size:off+entrySize], uint64(v))
}

// Get returns the value stored for fp.
func (db *DB) Get(fp fingerprint.Fingerprint) (Value, bool, error) {
	st := db.stripeFor(fp)
	st.mu.RLock()
	defer st.mu.RUnlock()
	if db.closed {
		return 0, false, ErrClosed
	}
	page := getPage()
	defer putPage(page)
	for p := db.bucketPage(fp); p != 0; {
		if err := db.readPage(p, page); err != nil {
			return 0, false, err
		}
		n := pageCount(page)
		for i := 0; i < n; i++ {
			efp, v := entryAt(page, i)
			if efp == fp {
				return v, true, nil
			}
		}
		p = pageNext(page)
	}
	return 0, false, nil
}

// Has reports whether fp is stored, at the same I/O cost as Get.
func (db *DB) Has(fp fingerprint.Fingerprint) (bool, error) {
	_, ok, err := db.Get(fp)
	return ok, err
}

// oneIdx is the index group of a single-pair chain walk (Put).
var oneIdx = []int{0}

// Put stores fp -> v, overwriting any previous value. It reports whether a
// new entry was created (false means an existing entry was updated). Put is
// the single-pair case of the batched chain walk (putChain): one read and
// at most one write per chain page, all through pooled page buffers.
func (db *DB) Put(fp fingerprint.Fingerprint, v Value) (bool, error) {
	pairs := [1]Pair{{FP: fp, Val: v}}
	var created [1]bool
	_, err := db.putChain(context.Background(), db.bucketPage(fp), oneIdx, pairs[:], created[:])
	return created[0], err
}

// Delete removes fp, reporting whether it was present. The slot is filled
// by the page's last entry so pages stay dense.
func (db *DB) Delete(fp fingerprint.Fingerprint) (bool, error) {
	st := db.stripeFor(fp)
	st.mu.Lock()
	defer st.mu.Unlock()
	if db.closed {
		return false, ErrClosed
	}
	page := getPage()
	defer putPage(page)
	for p := db.bucketPage(fp); p != 0; {
		if err := db.readPage(p, page); err != nil {
			return false, err
		}
		n := pageCount(page)
		for i := 0; i < n; i++ {
			efp, _ := entryAt(page, i)
			if efp != fp {
				continue
			}
			if err := db.markDirty(); err != nil {
				return false, err
			}
			if i != n-1 {
				lfp, lv := entryAt(page, n-1)
				setEntryAt(page, i, lfp, lv)
			}
			setPageCount(page, n-1)
			if err := db.writePage(p, page); err != nil {
				return false, err
			}
			db.entries.Add(^uint64(0))
			return true, nil
		}
		p = pageNext(page)
	}
	return false, nil
}

// Len returns the number of stored entries.
func (db *DB) Len() int {
	return int(db.entries.Load())
}

// lockAll write-locks every stripe, quiescing all mutators and probes.
// Stripes are always taken in index order so lockAll never deadlocks with
// single-stripe operations.
func (db *DB) lockAll() {
	for i := range db.stripes {
		db.stripes[i].mu.Lock()
	}
}

func (db *DB) unlockAll() {
	for i := len(db.stripes) - 1; i >= 0; i-- {
		db.stripes[i].mu.Unlock()
	}
}

// Range calls fn for every entry until fn returns false or an error occurs.
// The iteration order is physical (bucket page order), not key order. The
// walk holds every stripe lock, so it observes a point-in-time snapshot;
// fn must not call back into the database.
func (db *DB) Range(fn func(fp fingerprint.Fingerprint, v Value) bool) error {
	for i := range db.stripes {
		db.stripes[i].mu.RLock()
	}
	defer func() {
		for i := len(db.stripes) - 1; i >= 0; i-- {
			db.stripes[i].mu.RUnlock()
		}
	}()
	if db.closed {
		return ErrClosed
	}
	page := getPage()
	defer putPage(page)
	for p := uint64(1); p < db.pages.Load(); p++ {
		if err := db.readPage(p, page); err != nil {
			return err
		}
		n := pageCount(page)
		for i := 0; i < n; i++ {
			fp, v := entryAt(page, i)
			if !fn(fp, v) {
				return nil
			}
		}
	}
	return nil
}

// commitClean makes all outstanding page writes durable and only then
// writes and fsyncs the clean header. The two-fsync order is the point:
// with a single fsync covering pages and header together, the device may
// persist the clean mark before an earlier page write — a crash would then
// leave a torn page in a file whose header says clean, and Open would skip
// the recovery pass that quarantines it. Callers must have quiesced
// mutators (Sync/Close hold every stripe lock; recover is single-threaded).
func (db *DB) commitClean() error {
	if err := db.f.Sync(); err != nil {
		return fmt.Errorf("hashdb: %s: sync data: %w", db.path, err)
	}
	if err := db.writeHeader(true); err != nil {
		return err
	}
	if err := db.f.Sync(); err != nil {
		return fmt.Errorf("hashdb: %s: sync clean mark: %w", db.path, err)
	}
	return nil
}

// Sync makes all previous writes durable and marks the file clean. It
// quiesces every stripe, so no mutation can race the clean flag.
func (db *DB) Sync() error {
	db.lockAll()
	defer db.unlockAll()
	if db.closed {
		return ErrClosed
	}
	return db.commitClean()
}

// Close syncs and closes the database.
func (db *DB) Close() error {
	db.lockAll()
	defer db.unlockAll()
	if db.closed {
		return ErrClosed
	}
	err := db.commitClean()
	if cerr := db.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("hashdb: %s: close: %w", db.path, cerr)
	}
	db.closed = true
	return err
}

// CloseWithoutSync abandons the file without marking it clean, simulating a
// crash. The next Open runs recovery. Intended for failure-injection tests.
func (db *DB) CloseWithoutSync() error {
	db.lockAll()
	defer db.unlockAll()
	if db.closed {
		return ErrClosed
	}
	db.closed = true
	if err := db.f.Close(); err != nil {
		return fmt.Errorf("hashdb: %s: close: %w", db.path, err)
	}
	return nil
}

// Stats describes the physical shape of the database.
type Stats struct {
	Entries       uint64
	Buckets       uint64
	Stripes       int
	Pages         uint64
	OverflowPages uint64
	// MaxChain is the longest bucket chain (in pages) any write-path walk
	// has visited since open; ChainHist[i] counts walks that visited i+1
	// chain pages (the last bucket clamps longer walks; an update found
	// early stops the walk, so these are pages *paid for*, the write
	// path's actual I/O shape). Together they surface chain degradation
	// that LoadFactor alone hides.
	MaxChain  uint64
	ChainHist [chainHistBuckets]uint64
	// LoadFactor is entries / total bucket-region slots.
	LoadFactor float64
	// Recovery is what the open-time recovery pass repaired (all zero
	// when the file was opened cleanly).
	Recovery RecoveryStats
	Device   device.Stats
}

// Stats returns a snapshot of the database's shape and device usage. The
// counters are read atomically without quiescing writers, so concurrent
// mutations may make the snapshot loosely consistent.
func (db *DB) Stats() Stats {
	entries := db.entries.Load()
	lf := 0.0
	if db.buckets > 0 {
		lf = float64(entries) / float64(db.buckets*SlotsPerPage)
	}
	st := Stats{
		Entries:       entries,
		Buckets:       db.buckets,
		Stripes:       len(db.stripes),
		Pages:         db.pages.Load(),
		OverflowPages: db.overflowPages.Load(),
		MaxChain:      db.maxChain.Load(),
		LoadFactor:    lf,
		Recovery:      db.recovery,
		Device:        db.dev.Stats(),
	}
	for i := range db.chainHist {
		st.ChainHist[i] = db.chainHist[i].Load()
	}
	return st
}

// Device returns the device the store charges its I/O to.
func (db *DB) Device() *device.Device { return db.dev }

// Path returns the file path of the database.
func (db *DB) Path() string { return db.path }

var _ io.Closer = (*DB)(nil)
