// Package hashdb implements the persistent fingerprint hash table each SHHC
// node keeps on its SSD.
//
// The paper stores this table in Berkeley DB ("The hash table is stored on
// the SSD as a Berkeley DB"); hashdb is a from-scratch equivalent tuned to
// the same access pattern: point lookups and inserts of fixed-size
// <fingerprint, locator> records, dominated by one random 4 KB page read
// per probe. The file is a linear-hashing table that grows online (see
// resize.go):
//
//	page 0:                 header (magic, geometry, entry count, clean flag,
//	                        linear-hashing state, free list, directory root)
//	pages 1..baseBuckets:   the base bucket pages, addressed by fingerprint
//	                        prefix under the (level, split) mapping
//	pages baseBuckets+1..:  overflow pages chained from full buckets, bucket
//	                        pages created by splits (located via the bucket
//	                        directory), directory pages, and free pages
//
// Every physical page read/write is charged to a device.Device so the
// store's latency follows the configured hardware model (SSD in the paper's
// deployment, HDD for the disk-index baseline).
package hashdb

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"shhc/internal/device"
	"shhc/internal/fingerprint"
	"shhc/internal/pow2"
)

// Value is the 8-byte locator stored per fingerprint (e.g. the container or
// object ID holding the chunk in cloud storage).
type Value uint64

const (
	// PageSize is the I/O unit; matches common flash page/sector sizing.
	PageSize = 4096

	magic = "SHDB"
	// version3 is the static-geometry format; version4 appends the
	// linear-hashing state, free-list root, and bucket-directory root to
	// the header. v3 files open read-compatibly and upgrade to v4 the
	// first time any of those fields becomes non-trivial (first split,
	// first freed page).
	version3 = 3
	version4 = 4

	// page layout: crc32 uint32 | count uint16 | next uint64 | entries...
	// The CRC covers everything after itself and detects torn writes and
	// media corruption on read.
	pageCRCSize = 4
	pageHdrSize = pageCRCSize + 2 + 8
	entrySize   = fingerprint.Size + 8
	// SlotsPerPage is the number of entries a bucket/overflow page holds.
	SlotsPerPage = (PageSize - pageHdrSize) / entrySize

	// file header layout. Page 0 holds two header slots at offsets 0 and
	// headerSlotStride; writeHeader alternates between them by sequence
	// number, so a torn header write can destroy at most one slot and the
	// other still describes a consistent (if slightly stale) state. A v3
	// slot:
	//
	//	crc32(4) magic(4) version(4) pageSize(4) buckets(8) entries(8)
	//	pages(8) clean(1) seq(8)
	//
	// A v4 slot appends the online-growth state:
	//
	//	... level(4) split(8) freeHead(8) freePages(8) dirHead(8)
	//
	// The CRC covers everything after itself (to the version's length, so
	// the version field must be read before the CRC can be checked).
	fileHdrSize      = 4 + 4 + 4 + 4 + 8 + 8 + 8 + 1 + 8
	fileHdrSizeV4    = fileHdrSize + 4 + 8 + 8 + 8 + 8
	headerSlotStride = 512
)

// ErrClosed is returned by operations on a closed database.
var ErrClosed = errors.New("hashdb: database is closed")

// CorruptionError reports a structural inconsistency found in the file.
type CorruptionError struct {
	Path   string
	Detail string
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("hashdb: %s: corrupt database: %s", e.Path, e.Detail)
}

// ResizeMode selects whether the table grows online via incremental
// linear-hashing splits (see resize.go).
type ResizeMode int

const (
	// ResizeAuto enables online growth unless the caller pinned the
	// geometry with an explicit Options.Buckets — a pinned bucket count is
	// a statement about shape (tests, sizing experiments, the fixed
	// baseline), so it is honored.
	ResizeAuto ResizeMode = iota
	// ResizeOn always grows online, even with explicit Buckets.
	ResizeOn
	// ResizeOff pins the create-time geometry forever.
	ResizeOff
)

// DefaultSplitLoadFactor is the aggregate load factor (entries per
// bucket-region slot) past which a resizable table runs incremental
// splits. 0.75 keeps the expected chain around one page while splitting
// well before overflow chains dominate.
const DefaultSplitLoadFactor = 0.75

// Options configures database creation.
type Options struct {
	// ExpectedItems sizes the bucket region for ~50% initial fill so most
	// lookups cost a single page read. Defaults to 1<<20. A resizable
	// table outgrows this estimate online; a fixed one degrades past it.
	ExpectedItems int
	// Buckets overrides the computed bucket count directly (testing and
	// sizing experiments). If zero it is derived from ExpectedItems.
	Buckets uint64
	// Stripes is the number of bucket-region lock stripes (rounded to a
	// power of two). A stripe is a runtime construct, not persisted in the
	// file. 0 selects the default; 1 recovers a single global lock.
	Stripes int
	// Resize selects whether the table splits buckets online as it fills.
	Resize ResizeMode
	// SplitLoadFactor overrides the load factor that triggers splits.
	// 0 selects DefaultSplitLoadFactor.
	SplitLoadFactor float64
	// Device charges modeled latency per page I/O. Defaults to a
	// non-sleeping SSD accountant.
	Device *device.Device
}

func (o *Options) fill() {
	if o.ExpectedItems <= 0 {
		o.ExpectedItems = 1 << 20
	}
	if o.Buckets == 0 {
		// Target half-full bucket pages at the expected load.
		perBucket := SlotsPerPage / 2
		o.Buckets = uint64((o.ExpectedItems + perBucket - 1) / perBucket)
		if o.Buckets == 0 {
			o.Buckets = 1
		}
	}
	if o.Device == nil {
		o.Device = device.New(device.SSD, device.Account)
	}
}

// defaultStripes is the default lock-stripe count (power of two). 64 is
// enough to keep stripe collisions rare at any realistic GOMAXPROCS while
// the all-stripe operations (Sync, Range, Close) stay cheap.
const defaultStripes = 64

// dbStripe guards a slice of the bucket space: bucket b belongs to stripe
// b & (len(stripes)-1). Overflow pages are reached only through their
// bucket's chain, so a chain — bucket page plus its overflow pages — is
// covered entirely by one stripe lock.
type dbStripe struct {
	mu sync.RWMutex
	_  [40]byte // keep neighboring stripe locks off one cache line
}

// File is the backing-file contract DB needs. *os.File satisfies it; tests
// inject failpoint wrappers (see FailFile) to tear writes at arbitrary
// byte offsets.
type File interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
	Sync() error
	Close() error
}

// DB is an on-disk hash table from fingerprint to Value.
//
// All methods are safe for concurrent use. The bucket space is split over
// power-of-two lock stripes so probes of different buckets proceed in
// parallel; page allocation (file growth) and header writes serialize on a
// separate allocation mutex, which lookups never touch.
type DB struct {
	f          File
	path       string
	dev        *device.Device
	stripes    []dbStripe
	stripeMask uint64

	// baseBuckets is the create-time bucket count, immutable for the life
	// of the file: pages 1..baseBuckets are the base bucket pages, and the
	// linear-hashing mapping is anchored to it (numBuckets() =
	// baseBuckets<<level + split).
	baseBuckets uint64
	// resizable enables online growth; splitLF is the load factor that
	// triggers it. Both are fixed at create/open time.
	resizable bool
	splitLF   float64
	// state packs the linear-hashing (level, split) position into one
	// atomic word (see resize.go) so the read path derives a coherent
	// mapping from a single load.
	state atomic.Uint64
	// dir is the published bucket directory locating the bucket pages
	// splits created (bucket b >= baseBuckets lives at dir.pages[b-base]).
	dir atomic.Pointer[bucketDir]
	// splitMu serializes structural growth: bucket splits, compaction, and
	// directory appends. Lock order: splitMu, then stripe locks, then
	// allocMu. The read and write paths never take it.
	splitMu sync.Mutex
	// wantSplit is set by write-path chain walks that observe a chain of
	// chainSplitTrigger+ pages; the next write drains it into a split.
	wantSplit atomic.Bool
	splits    atomic.Uint64
	// recovering suppresses split triggering while the open-time recovery
	// pass re-inserts salvaged entries through the normal write path.
	// Written and read only while Open runs single-threaded.
	recovering bool

	// allocMu serializes page allocation (growing the file), the free
	// list, and header state transitions. Lock order: stripe lock, then
	// allocMu; allocMu never acquires stripe locks.
	allocMu sync.Mutex
	// freeHead/freeCount are the persistent free-page list (guarded by
	// allocMu): freed pages chain through their next fields on disk, and
	// the allocator drains the chain before extending the file.
	freeHead  uint64
	freeCount uint64
	// dirHead roots the on-disk directory page chain; dirPages mirrors the
	// chain in memory. Mutated under splitMu (dirHead also under allocMu,
	// because writeHeader persists it).
	dirHead  uint64
	dirPages []uint64

	entries       atomic.Uint64
	pages         atomic.Uint64 // total pages including header
	overflowPages atomic.Uint64 // chain statistics, for diagnostics
	dirty         atomic.Bool   // header on disk says unclean
	// headerSeq is the sequence number of the newest on-disk header slot;
	// writeHeader bumps it and writes slot seq%2. Guarded by the same
	// quiescence discipline as writeHeader itself.
	headerSeq uint64
	// recovery summarizes the open-time repair pass. Written only while
	// Open runs single-threaded, immutable afterwards.
	recovery RecoveryStats

	// Chain-degradation telemetry, recorded by every write-path chain
	// walk: the longest chain seen and a histogram of observed chain
	// lengths (bucket i counts chains of i+1 pages, the last clamps).
	maxChain  atomic.Uint64
	chainHist [chainHistBuckets]atomic.Uint64
	// closed is written with every stripe write-locked and read under any
	// stripe lock, so each operation observes it coherently.
	closed bool
}

// chainHistBuckets sizes the observed chain-length histogram; chains of
// chainHistBuckets or more pages clamp into the last bucket.
const chainHistBuckets = 8

// observeChain records one write-path walk of a chain of n pages. A deep
// chain is the live telemetry that requests a bucket split: lookups in
// that region are paying n page reads, so growth is overdue there no
// matter what the aggregate load factor says.
func (db *DB) observeChain(n int) {
	if n <= 0 {
		return
	}
	b := n - 1
	if b >= chainHistBuckets {
		b = chainHistBuckets - 1
	}
	db.chainHist[b].Add(1)
	if n >= chainSplitTrigger && db.resizable {
		db.wantSplit.Store(true)
	}
	for {
		cur := db.maxChain.Load()
		if uint64(n) <= cur || db.maxChain.CompareAndSwap(cur, uint64(n)) {
			break
		}
	}
}

func newStripes(n int) []dbStripe {
	if n <= 0 {
		n = defaultStripes
	}
	return make([]dbStripe, pow2.Floor(n))
}

// Create creates a new database file at path, failing if it exists.
func Create(path string, opts Options) (*DB, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("hashdb: create %s: %w", path, err)
	}
	return CreateFile(f, path, opts)
}

// CreateFile is Create over an injected, freshly created backing file
// (alternate I/O backends such as directio, testing). path names the file
// in messages and is removed when initialization fails. CreateFile takes
// ownership of f.
func CreateFile(f File, path string, opts Options) (*DB, error) {
	explicitBuckets := opts.Buckets != 0
	opts.fill()
	db := &DB{
		f:           f,
		path:        path,
		dev:         opts.Device,
		baseBuckets: opts.Buckets,
		stripes:     newStripes(opts.Stripes),
	}
	db.resizable = opts.Resize == ResizeOn ||
		(opts.Resize == ResizeAuto && !explicitBuckets)
	db.splitLF = opts.SplitLoadFactor
	if db.splitLF <= 0 {
		db.splitLF = DefaultSplitLoadFactor
	}
	db.dir.Store(&bucketDir{})
	db.stripeMask = uint64(len(db.stripes) - 1)
	db.pages.Store(1 + opts.Buckets)
	// Zero-fill header + bucket region so bucket pages read back as empty.
	if err := f.Truncate(int64(db.pages.Load()) * PageSize); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("hashdb: create %s: %w", path, err)
	}
	if err := db.writeHeader(true); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return db, nil
}

// Open opens an existing database. If the file was not closed cleanly, Open
// runs the recovery pass (see recovery.go): torn pages are quarantined,
// dangling overflow links cut, orphaned chain tails salvaged, and the
// counters recomputed, so an unclean file never fails Open permanently.
func Open(path string, dev *device.Device) (*DB, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("hashdb: open %s: %w", path, err)
	}
	return OpenFile(f, path, dev)
}

// OpenOptions configures opening an existing database. Geometry comes
// from the file; these are the runtime knobs only.
type OpenOptions struct {
	// Device charges modeled latency per page I/O. Defaults to a
	// non-sleeping SSD accountant.
	Device *device.Device
	// Resize selects whether the table keeps growing online. ResizeAuto
	// on open means resizable: growth is the production default, and a
	// file that already split stays correct either way (the persisted
	// (level, split) mapping is always honored; ResizeOff only stops
	// further splits). Tests pinning physical shape use ResizeOff.
	Resize ResizeMode
	// SplitLoadFactor overrides the split trigger; 0 selects the default.
	SplitLoadFactor float64
}

// OpenFile is Open over an injected backing file (testing and failure
// injection; see FailFile). path is used for messages only. OpenFile takes
// ownership of f and closes it when opening fails.
func OpenFile(f File, path string, dev *device.Device) (*DB, error) {
	return OpenFileWithOptions(f, path, OpenOptions{Device: dev})
}

// OpenFileWithOptions is OpenFile with explicit runtime options.
func OpenFileWithOptions(f File, path string, opts OpenOptions) (*DB, error) {
	dev := opts.Device
	if dev == nil {
		dev = device.New(device.SSD, device.Account)
	}
	db := &DB{f: f, path: path, dev: dev, stripes: newStripes(0)}
	db.resizable = opts.Resize != ResizeOff
	db.splitLF = opts.SplitLoadFactor
	if db.splitLF <= 0 {
		db.splitLF = DefaultSplitLoadFactor
	}
	db.dir.Store(&bucketDir{})
	db.stripeMask = uint64(len(db.stripes) - 1)
	if err := db.readHeader(); err != nil {
		f.Close()
		return nil, err
	}
	if db.dirty.Load() {
		// recover validates (and if necessary rolls back) the directory
		// and rebuilds the free list itself; it must not trust them.
		if err := db.recover(); err != nil {
			f.Close()
			return nil, err
		}
	} else if err := db.loadDir(); err != nil {
		f.Close()
		return nil, err
	}
	return db, nil
}

// loadDir mirrors the on-disk bucket directory into memory on a clean
// open: the header's (level, split) state says exactly how many directory
// entries are committed, and the chain rooted at dirHead holds them in
// order. Runs single-threaded inside Open.
func (db *DB) loadDir() error {
	want := int(db.numBuckets() - db.baseBuckets)
	if want == 0 {
		if db.dirHead != 0 {
			return &CorruptionError{Path: db.path, Detail: "directory root set with no split buckets"}
		}
		return nil
	}
	pages := db.pages.Load()
	entries := make([]uint64, 0, want)
	buf := getPage()
	defer putPage(buf)
	for p := db.dirHead; p != 0 && len(entries) < want; {
		if p >= pages {
			return &CorruptionError{Path: db.path, Detail: fmt.Sprintf("directory page %d out of range", p)}
		}
		if err := db.readPage(p, buf); err != nil {
			return err
		}
		db.dirPages = append(db.dirPages, p)
		for i := 0; i < dirSlotsPerPage && len(entries) < want; i++ {
			bp := dirEntryAt(buf, i)
			if bp == 0 || bp >= pages || bp <= db.baseBuckets {
				return &CorruptionError{Path: db.path, Detail: fmt.Sprintf("directory entry %d names invalid bucket page %d", len(entries), bp)}
			}
			entries = append(entries, bp)
		}
		p = pageNext(buf)
	}
	if len(entries) < want {
		return &CorruptionError{Path: db.path, Detail: fmt.Sprintf("directory holds %d of %d bucket pages", len(entries), want)}
	}
	db.dir.Store(&bucketDir{pages: entries, n: len(entries)})
	return nil
}

// writeHeader persists the file header into the slot the bumped sequence
// number selects, so a torn header write can destroy at most one of the two
// slots. Callers must hold allocMu or have otherwise quiesced mutators
// (Create/recover run single-threaded; Sync and Close hold every stripe
// write lock).
func (db *DB) writeHeader(clean bool) error {
	seq := db.headerSeq + 1
	level, split := unpackState(db.state.Load())
	// A file stays v3 while the growth state is trivial — this is the
	// read-compatible migration story: v3 files upgrade on first split
	// (or first freed page), not on open.
	v4 := level != 0 || split != 0 || db.freeHead != 0 || db.dirHead != 0
	size := fileHdrSize
	ver := uint32(version3)
	if v4 {
		size = fileHdrSizeV4
		ver = version4
	}
	var buf [fileHdrSizeV4]byte
	copy(buf[4:8], magic)
	binary.BigEndian.PutUint32(buf[8:12], ver)
	binary.BigEndian.PutUint32(buf[12:16], PageSize)
	binary.BigEndian.PutUint64(buf[16:24], db.baseBuckets)
	binary.BigEndian.PutUint64(buf[24:32], db.entries.Load())
	binary.BigEndian.PutUint64(buf[32:40], db.pages.Load())
	if clean {
		buf[40] = 1
	}
	binary.BigEndian.PutUint64(buf[41:49], seq)
	if v4 {
		binary.BigEndian.PutUint32(buf[49:53], uint32(level))
		binary.BigEndian.PutUint64(buf[53:61], split)
		binary.BigEndian.PutUint64(buf[61:69], db.freeHead)
		binary.BigEndian.PutUint64(buf[69:77], db.freeCount)
		binary.BigEndian.PutUint64(buf[77:85], db.dirHead)
	}
	binary.BigEndian.PutUint32(buf[0:4], crc32.ChecksumIEEE(buf[4:size]))
	db.dev.Write(size)
	if _, err := db.f.WriteAt(buf[:size], int64(seq%2)*headerSlotStride); err != nil {
		return fmt.Errorf("hashdb: %s: write header: %w", db.path, err)
	}
	db.headerSeq = seq
	// Writing a *dirty* header must NOT publish db.dirty here: markDirty's
	// lock-free fast path reads it, and a mutator that saw it true would
	// write pages while the mark is still only in the OS page cache — a
	// crash could then persist the torn page but not the mark. markDirty
	// publishes the flag itself, after its fsync returns.
	if clean {
		db.dirty.Store(false)
	}
	return nil
}

// decodeHeaderSlot validates one header slot, returning its sequence number
// and clean flag after loading the geometry fields into db.
func (db *DB) decodeHeaderSlot(buf []byte) (seq uint64, clean bool, ok bool) {
	if string(buf[4:8]) != magic {
		return 0, false, false
	}
	// The version picks the slot length the CRC covers, so it is read
	// (but not trusted) before the checksum; a corrupt version field
	// fails the CRC of whichever length it selects.
	size := 0
	switch binary.BigEndian.Uint32(buf[8:12]) {
	case version3:
		size = fileHdrSize
	case version4:
		size = fileHdrSizeV4
	default:
		return 0, false, false
	}
	if crc32.ChecksumIEEE(buf[4:size]) != binary.BigEndian.Uint32(buf[0:4]) {
		return 0, false, false
	}
	if ps := binary.BigEndian.Uint32(buf[12:16]); ps != PageSize {
		return 0, false, false
	}
	db.baseBuckets = binary.BigEndian.Uint64(buf[16:24])
	db.entries.Store(binary.BigEndian.Uint64(buf[24:32]))
	db.pages.Store(binary.BigEndian.Uint64(buf[32:40]))
	if size == fileHdrSizeV4 {
		db.state.Store(packState(uint8(binary.BigEndian.Uint32(buf[49:53])), binary.BigEndian.Uint64(buf[53:61])))
		db.freeHead = binary.BigEndian.Uint64(buf[61:69])
		db.freeCount = binary.BigEndian.Uint64(buf[69:77])
		db.dirHead = binary.BigEndian.Uint64(buf[77:85])
	} else {
		db.state.Store(0)
		db.freeHead, db.freeCount, db.dirHead = 0, 0, 0
	}
	return binary.BigEndian.Uint64(buf[41:49]), buf[40] == 1, true
}

func (db *DB) readHeader() error {
	var slots [2][fileHdrSizeV4]byte
	db.dev.Read(fileHdrSizeV4)
	if _, err := db.f.ReadAt(slots[0][:], 0); err != nil {
		return fmt.Errorf("hashdb: %s: read header: %w", db.path, err)
	}
	// The second slot may not exist yet in a file torn during Create.
	if _, err := db.f.ReadAt(slots[1][:], headerSlotStride); err != nil && !errors.Is(err, io.EOF) {
		return fmt.Errorf("hashdb: %s: read header: %w", db.path, err)
	}
	best := -1
	var bestSeq uint64
	for i := range slots {
		if seq, _, ok := db.decodeHeaderSlot(slots[i][:]); ok && (best < 0 || seq > bestSeq) {
			best, bestSeq = i, seq
		}
	}
	if best < 0 {
		if string(slots[0][0:4]) == magic {
			// Pre-v3 layout: magic first, no CRC, single slot. Not
			// corruption — a format mismatch, reported as such.
			return &CorruptionError{Path: db.path, Detail: fmt.Sprintf("unsupported pre-crash-safe header layout (file version %d)", binary.BigEndian.Uint32(slots[0][4:8]))}
		}
		return &CorruptionError{Path: db.path, Detail: "no valid header slot"}
	}
	// Re-decode the winner so its geometry is what sticks.
	seq, clean, _ := db.decodeHeaderSlot(slots[best][:])
	db.headerSeq = seq
	db.dirty.Store(!clean)
	if db.baseBuckets == 0 || db.pages.Load() < 1+db.baseBuckets {
		return &CorruptionError{Path: db.path, Detail: "inconsistent geometry"}
	}
	return nil
}

func (db *DB) readPage(p uint64, buf []byte) error {
	db.dev.Read(PageSize)
	if _, err := db.f.ReadAt(buf, int64(p)*PageSize); err != nil {
		return fmt.Errorf("hashdb: %s: read page %d: %w", db.path, p, err)
	}
	stored := binary.BigEndian.Uint32(buf[0:pageCRCSize])
	if stored == 0 && isZeroPage(buf[pageCRCSize:]) {
		// Never-written bucket page from the initial truncate: valid and
		// empty by construction.
		return nil
	}
	if got := crc32.ChecksumIEEE(buf[pageCRCSize:]); got != stored {
		return &CorruptionError{
			Path:   db.path,
			Detail: fmt.Sprintf("page %d checksum mismatch (stored %08x, computed %08x)", p, stored, got),
		}
	}
	return nil
}

func isZeroPage(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

func (db *DB) writePage(p uint64, buf []byte) error {
	binary.BigEndian.PutUint32(buf[0:pageCRCSize], crc32.ChecksumIEEE(buf[pageCRCSize:]))
	db.dev.Write(PageSize)
	if _, err := db.f.WriteAt(buf, int64(p)*PageSize); err != nil {
		return fmt.Errorf("hashdb: %s: write page %d: %w", db.path, p, err)
	}
	return nil
}

// markDirty lazily flips the on-disk clean flag before the first mutation
// after open/sync, so a crash is detectable. The flag is fsynced before
// markDirty returns: were the mark allowed to reorder behind later page
// writes, a crash could leave torn pages in a file whose header still says
// clean, and Open would skip the recovery pass that repairs them.
// Concurrent mutators race to the fast path; the loser of the allocMu
// handoff sees dirty already set.
func (db *DB) markDirty() error {
	if db.dirty.Load() {
		return nil
	}
	db.allocMu.Lock()
	defer db.allocMu.Unlock()
	if db.dirty.Load() {
		return nil
	}
	if err := db.writeHeader(false); err != nil {
		return err
	}
	if err := db.f.Sync(); err != nil {
		return fmt.Errorf("hashdb: %s: sync dirty mark: %w", db.path, err)
	}
	// Only now may other mutators take the fast path: the mark is durable,
	// so any page they tear will be flagged for recovery at the next open.
	db.dirty.Store(true)
	return nil
}

// pagePool recycles 4 KB page buffers across probes; the hot path would
// otherwise allocate one per lookup. The pool holds *[PageSize]byte, not
// []byte: a pointer fits an interface value without allocating, whereas a
// slice header gets boxed on every Put — an allocation on the exact path
// the pool exists to remove. Pages are always full-size, so the
// slice↔array-pointer conversions are total.
var pagePool = sync.Pool{New: func() any { return new([PageSize]byte) }}

// getPage acquires a pooled page; release it with putPage.
//
//shhc:returns-buf
func getPage() []byte { return pagePool.Get().(*[PageSize]byte)[:] }

// putPage returns a page acquired from getPage to the pool.
//
//shhc:takes-buf b
func putPage(b []byte) { pagePool.Put((*[PageSize]byte)(b)) }

func pageCount(page []byte) int {
	return int(binary.BigEndian.Uint16(page[pageCRCSize : pageCRCSize+2]))
}
func pageNext(page []byte) uint64 {
	return binary.BigEndian.Uint64(page[pageCRCSize+2 : pageCRCSize+10])
}
func setPageCount(page []byte, n int) {
	binary.BigEndian.PutUint16(page[pageCRCSize:pageCRCSize+2], uint16(n))
}
func setPageNext(page []byte, p uint64) {
	binary.BigEndian.PutUint64(page[pageCRCSize+2:pageCRCSize+10], p)
}

func entryAt(page []byte, i int) (fingerprint.Fingerprint, Value) {
	off := pageHdrSize + i*entrySize
	var fp fingerprint.Fingerprint
	copy(fp[:], page[off:off+fingerprint.Size])
	return fp, Value(binary.BigEndian.Uint64(page[off+fingerprint.Size : off+entrySize]))
}

func setEntryAt(page []byte, i int, fp fingerprint.Fingerprint, v Value) {
	off := pageHdrSize + i*entrySize
	copy(page[off:], fp[:])
	binary.BigEndian.PutUint64(page[off+fingerprint.Size:off+entrySize], uint64(v))
}

// Get returns the value stored for fp.
func (db *DB) Get(fp fingerprint.Fingerprint) (Value, bool, error) {
	b, st := db.rlockBucket(fp.Prefix64())
	defer st.mu.RUnlock()
	if db.closed {
		return 0, false, ErrClosed
	}
	page := getPage()
	defer putPage(page)
	for p := db.bucketPageOf(b); p != 0; {
		if err := db.readPage(p, page); err != nil {
			return 0, false, err
		}
		n := pageCount(page)
		for i := 0; i < n; i++ {
			efp, v := entryAt(page, i)
			if efp == fp {
				return v, true, nil
			}
		}
		p = pageNext(page)
	}
	return 0, false, nil
}

// Has reports whether fp is stored, at the same I/O cost as Get.
func (db *DB) Has(fp fingerprint.Fingerprint) (bool, error) {
	_, ok, err := db.Get(fp)
	return ok, err
}

// oneIdx is the index group of a single-pair chain walk (Put).
var oneIdx = []int{0}

// Put stores fp -> v, overwriting any previous value. It reports whether a
// new entry was created (false means an existing entry was updated). Put is
// the single-pair case of the batched chain walk (putChain): one read and
// at most one write per chain page, all through pooled page buffers.
func (db *DB) Put(fp fingerprint.Fingerprint, v Value) (bool, error) {
	pairs := [1]Pair{{FP: fp, Val: v}}
	var created [1]bool
	for {
		_, stale, err := db.putChain(context.Background(), db.bucketOf(fp), oneIdx, pairs[:], created[:])
		if err != nil {
			return created[0], err
		}
		if len(stale) == 0 {
			break
		}
		// A concurrent split remapped fp between the bucket computation
		// and the stripe lock; retry against the new bucket.
	}
	return created[0], db.maybeSplit()
}

// Delete removes fp, reporting whether it was present. The slot is filled
// by the page's last entry so pages stay dense; an overflow page whose
// last entry leaves is unlinked from its chain and handed to the free
// list, so delete-heavy churn shortens chains instead of leaving dead
// pages in every future walk.
func (db *DB) Delete(fp fingerprint.Fingerprint) (bool, error) {
	b, st := db.lockBucket(fp.Prefix64())
	defer st.mu.Unlock()
	if db.closed {
		return false, ErrClosed
	}
	page := getPage()
	defer putPage(page)
	head := db.bucketPageOf(b)
	prev := uint64(0) // page linking to p, 0 while p is the chain head
	for p := head; p != 0; {
		if err := db.readPage(p, page); err != nil {
			return false, err
		}
		n := pageCount(page)
		next := pageNext(page)
		for i := 0; i < n; i++ {
			efp, _ := entryAt(page, i)
			if efp != fp {
				continue
			}
			if err := db.markDirty(); err != nil {
				return false, err
			}
			if i != n-1 {
				lfp, lv := entryAt(page, n-1)
				setEntryAt(page, i, lfp, lv)
			}
			setPageCount(page, n-1)
			if n == 1 && p != head {
				// The overflow page emptied: unlink and free it. Order
				// matters for crash safety — the page is written empty
				// first, so if the unlink or free never lands, recovery
				// finds an empty page and cannot resurrect the deleted
				// entry from it.
				setPageNext(page, 0)
				if err := db.writePage(p, page); err != nil {
					return false, err
				}
				if err := db.readPage(prev, page); err != nil {
					return false, err
				}
				setPageNext(page, next)
				if err := db.writePage(prev, page); err != nil {
					return false, err
				}
				if err := db.freePage(p); err != nil {
					return false, err
				}
				db.overflowPages.Add(^uint64(0))
			} else if err := db.writePage(p, page); err != nil {
				return false, err
			}
			db.entries.Add(^uint64(0))
			return true, nil
		}
		prev = p
		p = next
	}
	return false, nil
}

// Len returns the number of stored entries.
func (db *DB) Len() int {
	return int(db.entries.Load())
}

// lockAll write-locks every stripe, quiescing all mutators and probes.
// Stripes are always taken in index order so lockAll never deadlocks with
// single-stripe operations.
func (db *DB) lockAll() {
	for i := range db.stripes {
		db.stripes[i].mu.Lock()
	}
}

func (db *DB) unlockAll() {
	for i := len(db.stripes) - 1; i >= 0; i-- {
		db.stripes[i].mu.Unlock()
	}
}

// Range calls fn for every entry until fn returns false or an error occurs.
// The iteration order is by bucket chain, not key order. The walk locks one
// bucket's stripe at a time — an entry's chain is read under its stripe's
// read lock, then the lock is dropped before fn runs and before the next
// bucket is taken — so writers to other regions (and to already-visited
// ones) make progress throughout a long enumeration instead of stalling
// for the whole file scan. The cost is snapshot semantics: an entry
// present for the whole walk is delivered at least once, but a concurrent
// bucket split can deliver a moved entry twice and concurrent writes may
// or may not be seen. Callers (Bloom rebuilds, anti-entropy enumeration)
// are idempotent per entry. fn must not call back into the database.
func (db *DB) Range(fn func(fp fingerprint.Fingerprint, v Value) bool) error {
	page := getPage()
	defer putPage(page)
	var pending []Pair
	for b := uint64(0); b < db.numBuckets(); b++ {
		st := db.stripeOf(b)
		st.mu.RLock()
		if db.closed {
			st.mu.RUnlock()
			return ErrClosed
		}
		pending = pending[:0]
		for p := db.bucketPageOf(b); p != 0; {
			if err := db.readPage(p, page); err != nil {
				st.mu.RUnlock()
				return err
			}
			n := pageCount(page)
			for i := 0; i < n; i++ {
				fp, v := entryAt(page, i)
				pending = append(pending, Pair{FP: fp, Val: v})
			}
			p = pageNext(page)
		}
		st.mu.RUnlock()
		for _, pr := range pending {
			if !fn(pr.FP, pr.Val) {
				return nil
			}
		}
	}
	return nil
}

// commitClean makes all outstanding page writes durable and only then
// writes and fsyncs the clean header. The two-fsync order is the point:
// with a single fsync covering pages and header together, the device may
// persist the clean mark before an earlier page write — a crash would then
// leave a torn page in a file whose header says clean, and Open would skip
// the recovery pass that quarantines it. Callers must have quiesced
// mutators (Sync/Close hold every stripe lock; recover is single-threaded).
func (db *DB) commitClean() error {
	if err := db.f.Sync(); err != nil {
		return fmt.Errorf("hashdb: %s: sync data: %w", db.path, err)
	}
	if err := db.writeHeader(true); err != nil {
		return err
	}
	if err := db.f.Sync(); err != nil {
		return fmt.Errorf("hashdb: %s: sync clean mark: %w", db.path, err)
	}
	return nil
}

// Sync makes all previous writes durable and marks the file clean. It
// quiesces every stripe, so no mutation can race the clean flag.
func (db *DB) Sync() error {
	db.lockAll()
	defer db.unlockAll()
	if db.closed {
		return ErrClosed
	}
	return db.commitClean()
}

// Close syncs and closes the database.
func (db *DB) Close() error {
	db.lockAll()
	defer db.unlockAll()
	if db.closed {
		return ErrClosed
	}
	err := db.commitClean()
	if cerr := db.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("hashdb: %s: close: %w", db.path, cerr)
	}
	db.closed = true
	return err
}

// CloseWithoutSync abandons the file without marking it clean, simulating a
// crash. The next Open runs recovery. Intended for failure-injection tests.
func (db *DB) CloseWithoutSync() error {
	db.lockAll()
	defer db.unlockAll()
	if db.closed {
		return ErrClosed
	}
	db.closed = true
	if err := db.f.Close(); err != nil {
		return fmt.Errorf("hashdb: %s: close: %w", db.path, err)
	}
	return nil
}

// Stats describes the physical shape of the database.
type Stats struct {
	Entries uint64
	// Buckets is the current bucket count (base<<level + split for a
	// table that has split); BaseBuckets is the immutable create-time
	// count.
	Buckets     uint64
	BaseBuckets uint64
	// Level and SplitPointer are the linear-hashing position; Splits
	// counts bucket splits performed since open.
	Level        uint8
	SplitPointer uint64
	Splits       uint64
	// FreePages is the length of the persistent free-page list the
	// allocator drains before extending the file.
	FreePages     uint64
	Resizable     bool
	Stripes       int
	Pages         uint64
	OverflowPages uint64
	// MaxChain is the longest bucket chain (in pages) any write-path walk
	// has visited since open; ChainHist[i] counts walks that visited i+1
	// chain pages (the last bucket clamps longer walks; an update found
	// early stops the walk, so these are pages *paid for*, the write
	// path's actual I/O shape). Together they surface chain degradation
	// that LoadFactor alone hides.
	MaxChain  uint64
	ChainHist [chainHistBuckets]uint64
	// LoadFactor is entries / total bucket-region slots.
	LoadFactor float64
	// Recovery is what the open-time recovery pass repaired (all zero
	// when the file was opened cleanly).
	Recovery RecoveryStats
	Device   device.Stats
}

// Stats returns a snapshot of the database's shape and device usage. The
// counters are read atomically without quiescing writers, so concurrent
// mutations may make the snapshot loosely consistent.
func (db *DB) Stats() Stats {
	entries := db.entries.Load()
	level, split := unpackState(db.state.Load())
	buckets := db.numBuckets()
	lf := 0.0
	if buckets > 0 {
		lf = float64(entries) / float64(buckets*SlotsPerPage)
	}
	db.allocMu.Lock()
	freePages := db.freeCount
	db.allocMu.Unlock()
	st := Stats{
		Entries:       entries,
		Buckets:       buckets,
		BaseBuckets:   db.baseBuckets,
		Level:         level,
		SplitPointer:  split,
		Splits:        db.splits.Load(),
		FreePages:     freePages,
		Resizable:     db.resizable,
		Stripes:       len(db.stripes),
		Pages:         db.pages.Load(),
		OverflowPages: db.overflowPages.Load(),
		MaxChain:      db.maxChain.Load(),
		LoadFactor:    lf,
		Recovery:      db.recovery,
		Device:        db.dev.Stats(),
	}
	for i := range db.chainHist {
		st.ChainHist[i] = db.chainHist[i].Load()
	}
	return st
}

// Device returns the device the store charges its I/O to.
func (db *DB) Device() *device.Device { return db.dev }

// Path returns the file path of the database.
func (db *DB) Path() string { return db.path }

var _ io.Closer = (*DB)(nil)
