package hashdb

import (
	"context"
	"path/filepath"
	"testing"

	"shhc/internal/device"
	"shhc/internal/fingerprint"
)

func TestGetBatchMatchesGet(t *testing.T) {
	dev := device.New(device.SSD, device.Account)
	db, err := Create(filepath.Join(t.TempDir(), "batch.db"), Options{ExpectedItems: 1 << 12, Device: dev})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer db.Close()

	const n = 2000
	for i := uint64(0); i < n; i++ {
		if _, err := db.Put(fingerprint.FromUint64(i), Value(i+1)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}

	// Mix of present, absent, and duplicate probes.
	fps := make([]fingerprint.Fingerprint, 0, n/2+200)
	for i := uint64(0); i < n; i += 2 {
		fps = append(fps, fingerprint.FromUint64(i))
	}
	for i := uint64(n); i < n+100; i++ {
		fps = append(fps, fingerprint.FromUint64(i))
	}
	fps = append(fps, fps[:100]...)

	vals, found, err := db.GetBatch(context.Background(), fps)
	if err != nil {
		t.Fatalf("GetBatch: %v", err)
	}
	if len(vals) != len(fps) || len(found) != len(fps) {
		t.Fatalf("GetBatch returned %d vals, %d flags for %d probes", len(vals), len(found), len(fps))
	}
	for i, fp := range fps {
		wantV, wantOK, gerr := db.Get(fp)
		if gerr != nil {
			t.Fatalf("Get: %v", gerr)
		}
		if found[i] != wantOK || (wantOK && vals[i] != wantV) {
			t.Fatalf("probe %d (%s): batch = (%v,%v), point = (%v,%v)", i, fp.Short(), vals[i], found[i], wantV, wantOK)
		}
	}
}

// TestGetBatchCoalescesPageReads is the point of the API: a batch touching
// b distinct buckets must charge the device ~b page reads, not one per
// fingerprint.
func TestGetBatchCoalescesPageReads(t *testing.T) {
	dev := device.New(device.SSD, device.Account)
	db, err := Create(filepath.Join(t.TempDir(), "coalesce.db"), Options{Buckets: 8, Device: dev})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer db.Close()

	const n = 500 // 500 entries over 8 buckets: every page holds many probes
	fps := make([]fingerprint.Fingerprint, n)
	for i := range fps {
		fps[i] = fingerprint.FromUint64(uint64(i))
		if _, err := db.Put(fps[i], Value(i)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}

	before := dev.Stats().Reads
	_, found, err := db.GetBatch(context.Background(), fps)
	if err != nil {
		t.Fatalf("GetBatch: %v", err)
	}
	for i, ok := range found {
		if !ok {
			t.Fatalf("probe %d missing", i)
		}
	}
	batchReads := dev.Stats().Reads - before

	before = dev.Stats().Reads
	for _, fp := range fps {
		if _, _, err := db.Get(fp); err != nil {
			t.Fatalf("Get: %v", err)
		}
	}
	pointReads := dev.Stats().Reads - before

	if batchReads >= pointReads/4 {
		t.Fatalf("GetBatch charged %d reads vs %d for point probes; want at least 4x coalescing", batchReads, pointReads)
	}
	// 500 entries in 8 buckets overflow each bucket's page chain; the
	// batch still reads each chain page at most once.
	maxPages := int64(db.Stats().Pages)
	if batchReads > maxPages {
		t.Fatalf("GetBatch charged %d reads for a %d-page file", batchReads, maxPages)
	}
}

func TestGetBatchEmptyAndClosed(t *testing.T) {
	db, err := Create(filepath.Join(t.TempDir(), "edge.db"), Options{ExpectedItems: 16})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, _, err := db.GetBatch(context.Background(), nil); err != nil {
		t.Fatalf("GetBatch(nil): %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, _, err := db.GetBatch(context.Background(), []fingerprint.Fingerprint{fingerprint.FromUint64(1)}); err == nil {
		t.Fatal("GetBatch on closed DB succeeded")
	}
}

func TestMemStoreGetBatch(t *testing.T) {
	s := NewMemStore(nil)
	defer s.Close()
	const n = 300
	for i := uint64(0); i < n; i++ {
		if _, err := s.Put(fingerprint.FromUint64(i), Value(i*3)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	fps := make([]fingerprint.Fingerprint, n+50)
	for i := range fps {
		fps[i] = fingerprint.FromUint64(uint64(i))
	}
	vals, found, err := s.GetBatch(context.Background(), fps)
	if err != nil {
		t.Fatalf("GetBatch: %v", err)
	}
	for i := range fps {
		if i < n && (!found[i] || vals[i] != Value(uint64(i)*3)) {
			t.Fatalf("probe %d = (%v,%v), want (%d,true)", i, vals[i], found[i], i*3)
		}
		if i >= n && found[i] {
			t.Fatalf("absent probe %d reported found", i)
		}
	}
}
