// Package blockdev implements inline deduplication for primary storage —
// the first item in the paper's future work ("Our future work will ...
// focus on supporting in-line deduplication for primary storage").
//
// A Device is a virtual block volume: every block write is fingerprinted
// and looked up in an SHHC index before any data is stored, so identical
// blocks — within a volume or across volumes sharing a BlockPool — are
// stored once and reference-counted. Unlike the backup path, primary
// storage overwrites in place, so the pool releases a block's physical
// storage when its last reference goes away (TRIM and overwrite both
// decrement).
package blockdev

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"shhc/internal/core"
	"shhc/internal/fingerprint"
)

// Index is the fingerprint lookup service (a core.Cluster or single node).
// The Device always queries it under context.Background(): the block layer
// speaks io.ReaderAt/io.WriterAt, which carry no context, and a block
// write cannot be half-aborted anyway.
type Index interface {
	LookupOrInsert(ctx context.Context, fp fingerprint.Fingerprint, val core.Value) (core.LookupResult, error)
}

// BlockPool is a reference-counted, content-addressed physical block
// store. Multiple Devices share one pool to get cross-volume dedup.
// Safe for concurrent use.
type BlockPool struct {
	mu     sync.Mutex
	blocks map[fingerprint.Fingerprint]*pooledBlock
	bytes  int64
}

type pooledBlock struct {
	data []byte
	refs int
}

// NewBlockPool creates an empty pool.
func NewBlockPool() *BlockPool {
	return &BlockPool{blocks: make(map[fingerprint.Fingerprint]*pooledBlock)}
}

// Acquire stores data under fp (or bumps the refcount if present) and
// reports whether the block was newly stored.
func (p *BlockPool) Acquire(fp fingerprint.Fingerprint, data []byte) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if b, ok := p.blocks[fp]; ok {
		b.refs++
		return false
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	p.blocks[fp] = &pooledBlock{data: cp, refs: 1}
	p.bytes += int64(len(data))
	return true
}

// AddRef bumps an existing block's refcount, reporting whether it exists.
func (p *BlockPool) AddRef(fp fingerprint.Fingerprint) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	b, ok := p.blocks[fp]
	if !ok {
		return false
	}
	b.refs++
	return true
}

// Release drops one reference; at zero the physical block is freed.
// It reports whether the block still exists afterwards.
func (p *BlockPool) Release(fp fingerprint.Fingerprint) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	b, ok := p.blocks[fp]
	if !ok {
		return false
	}
	b.refs--
	if b.refs <= 0 {
		p.bytes -= int64(len(b.data))
		delete(p.blocks, fp)
		return false
	}
	return true
}

// Get returns a copy of the block's data.
func (p *BlockPool) Get(fp fingerprint.Fingerprint) ([]byte, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	b, ok := p.blocks[fp]
	if !ok {
		return nil, false
	}
	cp := make([]byte, len(b.data))
	copy(cp, b.data)
	return cp, true
}

// PoolStats describe physical storage consumption.
type PoolStats struct {
	Blocks int
	Bytes  int64
}

// Stats returns a snapshot of the pool.
func (p *BlockPool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{Blocks: len(p.blocks), Bytes: p.bytes}
}

// Config configures a Device.
type Config struct {
	// BlockSize in bytes. Default 4096.
	BlockSize int
	// Blocks is the volume size in blocks. Required.
	Blocks int
	// Index is the SHHC fingerprint service. Required.
	Index Index
	// Pool is the physical block store; share one across volumes for
	// cross-volume dedup. Required.
	Pool *BlockPool
}

// Device is a deduplicated virtual block volume. Safe for concurrent use;
// block operations are serialized per device.
type Device struct {
	mu      sync.Mutex
	cfg     Config
	mapping []fingerprint.Fingerprint // LBA -> content fp; Zero = unwritten

	logicalWrites uint64
	dedupHits     uint64
}

// New creates a volume.
func New(cfg Config) (*Device, error) {
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 4096
	}
	if cfg.Blocks <= 0 {
		return nil, errors.New("blockdev: Config.Blocks must be positive")
	}
	if cfg.Index == nil {
		return nil, errors.New("blockdev: Config.Index is required")
	}
	if cfg.Pool == nil {
		return nil, errors.New("blockdev: Config.Pool is required")
	}
	return &Device{cfg: cfg, mapping: make([]fingerprint.Fingerprint, cfg.Blocks)}, nil
}

// BlockSize returns the device's block size.
func (d *Device) BlockSize() int { return d.cfg.BlockSize }

// Size returns the volume size in bytes.
func (d *Device) Size() int64 { return int64(d.cfg.Blocks) * int64(d.cfg.BlockSize) }

// WriteBlock replaces the block at lba with data (which must be exactly
// one block long).
func (d *Device) WriteBlock(lba int, data []byte) error {
	if len(data) != d.cfg.BlockSize {
		return fmt.Errorf("blockdev: write of %d bytes, want exactly %d", len(data), d.cfg.BlockSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writeBlockLocked(lba, data)
}

func (d *Device) writeBlockLocked(lba int, data []byte) error {
	if lba < 0 || lba >= d.cfg.Blocks {
		return fmt.Errorf("blockdev: block %d out of range [0, %d)", lba, d.cfg.Blocks)
	}
	fp := fingerprint.FromData(data)
	d.logicalWrites++

	// Inline dedup: consult the SHHC index before storing anything.
	res, err := d.cfg.Index.LookupOrInsert(context.Background(), fp, core.Value(lba))
	if err != nil {
		return fmt.Errorf("blockdev: index lookup: %w", err)
	}
	if res.Exists {
		// Known content. The pool may have dropped it if all references
		// died after the index entry was created; re-acquire handles
		// both cases.
		if !d.cfg.Pool.AddRef(fp) {
			d.cfg.Pool.Acquire(fp, data)
		} else {
			d.dedupHits++
		}
	} else {
		d.cfg.Pool.Acquire(fp, data)
	}

	// Release the block being overwritten.
	if old := d.mapping[lba]; !old.IsZero() && old != fp {
		d.cfg.Pool.Release(old)
	} else if old == fp {
		// Same content rewritten: we just acquired a second reference,
		// drop the redundant one.
		d.cfg.Pool.Release(fp)
	}
	d.mapping[lba] = fp
	return nil
}

// ReadBlock returns the block at lba; unwritten blocks read as zeros.
func (d *Device) ReadBlock(lba int) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.readBlockLocked(lba)
}

func (d *Device) readBlockLocked(lba int) ([]byte, error) {
	if lba < 0 || lba >= d.cfg.Blocks {
		return nil, fmt.Errorf("blockdev: block %d out of range [0, %d)", lba, d.cfg.Blocks)
	}
	fp := d.mapping[lba]
	if fp.IsZero() {
		return make([]byte, d.cfg.BlockSize), nil
	}
	data, ok := d.cfg.Pool.Get(fp)
	if !ok {
		return nil, fmt.Errorf("blockdev: block %d references missing content %s", lba, fp.Short())
	}
	return data, nil
}

// Trim releases the block at lba (the volume reads zeros afterwards).
func (d *Device) Trim(lba int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if lba < 0 || lba >= d.cfg.Blocks {
		return fmt.Errorf("blockdev: block %d out of range [0, %d)", lba, d.cfg.Blocks)
	}
	if old := d.mapping[lba]; !old.IsZero() {
		d.cfg.Pool.Release(old)
		d.mapping[lba] = fingerprint.Zero
	}
	return nil
}

// WriteAt implements byte-granularity writes with read-modify-write of
// partial blocks, satisfying io.WriterAt.
func (d *Device) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 || off+int64(len(p)) > d.Size() {
		return 0, fmt.Errorf("blockdev: write [%d, %d) outside volume of %d bytes", off, off+int64(len(p)), d.Size())
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	bs := int64(d.cfg.BlockSize)
	written := 0
	for len(p) > 0 {
		lba := int(off / bs)
		inner := int(off % bs)
		n := d.cfg.BlockSize - inner
		if n > len(p) {
			n = len(p)
		}
		var block []byte
		if inner == 0 && n == d.cfg.BlockSize {
			block = p[:n]
		} else {
			cur, err := d.readBlockLocked(lba)
			if err != nil {
				return written, err
			}
			copy(cur[inner:], p[:n])
			block = cur
		}
		if err := d.writeBlockLocked(lba, block); err != nil {
			return written, err
		}
		p = p[n:]
		off += int64(n)
		written += n
	}
	return written, nil
}

// ReadAt implements byte-granularity reads, satisfying io.ReaderAt.
func (d *Device) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off+int64(len(p)) > d.Size() {
		return 0, fmt.Errorf("blockdev: read [%d, %d) outside volume of %d bytes", off, off+int64(len(p)), d.Size())
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	bs := int64(d.cfg.BlockSize)
	read := 0
	for len(p) > 0 {
		lba := int(off / bs)
		inner := int(off % bs)
		block, err := d.readBlockLocked(lba)
		if err != nil {
			return read, err
		}
		n := copy(p, block[inner:])
		p = p[n:]
		off += int64(n)
		read += n
	}
	return read, nil
}

// Stats describe the volume's dedup effectiveness.
type Stats struct {
	LogicalWrites uint64
	DedupHits     uint64
	MappedBlocks  int
}

// Stats returns a snapshot of the volume counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	mapped := 0
	for _, fp := range d.mapping {
		if !fp.IsZero() {
			mapped++
		}
	}
	return Stats{LogicalWrites: d.logicalWrites, DedupHits: d.dedupHits, MappedBlocks: mapped}
}
