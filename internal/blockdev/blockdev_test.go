package blockdev

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"shhc/internal/core"
	"shhc/internal/hashdb"
)

func newIndex(t *testing.T) Index {
	t.Helper()
	node, err := core.NewNode(core.NodeConfig{
		ID:            "blockdev-test",
		Store:         hashdb.NewMemStore(nil),
		CacheSize:     1 << 12,
		BloomExpected: 1 << 16,
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	t.Cleanup(func() { node.Close() })
	return node
}

func newDevice(t *testing.T, blocks int, pool *BlockPool, index Index) *Device {
	t.Helper()
	if pool == nil {
		pool = NewBlockPool()
	}
	if index == nil {
		index = newIndex(t)
	}
	d, err := New(Config{BlockSize: 512, Blocks: blocks, Index: index, Pool: pool})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func block(seed byte, size int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = seed
	}
	return b
}

func TestConfigValidation(t *testing.T) {
	index := newIndex(t)
	pool := NewBlockPool()
	if _, err := New(Config{Blocks: 0, Index: index, Pool: pool}); err == nil {
		t.Fatal("zero blocks accepted")
	}
	if _, err := New(Config{Blocks: 4, Pool: pool}); err == nil {
		t.Fatal("missing index accepted")
	}
	if _, err := New(Config{Blocks: 4, Index: index}); err == nil {
		t.Fatal("missing pool accepted")
	}
}

func TestWriteReadBlock(t *testing.T) {
	d := newDevice(t, 8, nil, nil)
	data := block(0xAB, 512)
	if err := d.WriteBlock(3, data); err != nil {
		t.Fatalf("WriteBlock: %v", err)
	}
	got, err := d.ReadBlock(3)
	if err != nil {
		t.Fatalf("ReadBlock: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read back differs")
	}
}

func TestUnwrittenReadsZeros(t *testing.T) {
	d := newDevice(t, 4, nil, nil)
	got, err := d.ReadBlock(0)
	if err != nil {
		t.Fatalf("ReadBlock: %v", err)
	}
	if !bytes.Equal(got, make([]byte, 512)) {
		t.Fatal("unwritten block not zeroed")
	}
}

func TestBoundsChecks(t *testing.T) {
	d := newDevice(t, 4, nil, nil)
	if err := d.WriteBlock(4, block(1, 512)); err == nil {
		t.Fatal("out-of-range write accepted")
	}
	if err := d.WriteBlock(0, block(1, 100)); err == nil {
		t.Fatal("short write accepted")
	}
	if _, err := d.ReadBlock(-1); err == nil {
		t.Fatal("negative read accepted")
	}
	if err := d.Trim(99); err == nil {
		t.Fatal("out-of-range trim accepted")
	}
}

func TestIntraVolumeDedup(t *testing.T) {
	pool := NewBlockPool()
	d := newDevice(t, 100, pool, nil)
	data := block(0x11, 512)
	for lba := 0; lba < 100; lba++ {
		if err := d.WriteBlock(lba, data); err != nil {
			t.Fatalf("WriteBlock(%d): %v", lba, err)
		}
	}
	if st := pool.Stats(); st.Blocks != 1 || st.Bytes != 512 {
		t.Fatalf("pool = %+v, want exactly 1 physical block", st)
	}
	st := d.Stats()
	if st.LogicalWrites != 100 || st.MappedBlocks != 100 {
		t.Fatalf("device stats = %+v", st)
	}
	if st.DedupHits != 99 {
		t.Fatalf("DedupHits = %d, want 99", st.DedupHits)
	}
}

func TestCrossVolumeDedup(t *testing.T) {
	pool := NewBlockPool()
	index := newIndex(t)
	d1 := newDevice(t, 10, pool, index)
	d2 := newDevice(t, 10, pool, index)

	data := block(0x22, 512)
	d1.WriteBlock(0, data)
	d2.WriteBlock(5, data)

	if st := pool.Stats(); st.Blocks != 1 {
		t.Fatalf("pool blocks = %d, want 1 (cross-volume dedup)", st.Blocks)
	}
	got, _ := d2.ReadBlock(5)
	if !bytes.Equal(got, data) {
		t.Fatal("cross-volume read differs")
	}
}

func TestOverwriteReleasesOldBlock(t *testing.T) {
	pool := NewBlockPool()
	d := newDevice(t, 4, pool, nil)
	d.WriteBlock(0, block(1, 512))
	d.WriteBlock(0, block(2, 512)) // overwrite: block(1) now unreferenced
	if st := pool.Stats(); st.Blocks != 1 {
		t.Fatalf("pool blocks = %d, want 1 after overwrite freed the old block", st.Blocks)
	}
	got, _ := d.ReadBlock(0)
	if got[0] != 2 {
		t.Fatal("overwrite did not take effect")
	}
}

func TestRewriteSameContentKeepsSingleRef(t *testing.T) {
	pool := NewBlockPool()
	d := newDevice(t, 4, pool, nil)
	data := block(7, 512)
	d.WriteBlock(1, data)
	d.WriteBlock(1, data) // idempotent rewrite
	if st := pool.Stats(); st.Blocks != 1 {
		t.Fatalf("pool blocks = %d, want 1", st.Blocks)
	}
	// A single trim must fully free it (refcount must not have leaked).
	d.Trim(1)
	if st := pool.Stats(); st.Blocks != 0 {
		t.Fatalf("pool blocks = %d after trim, want 0", st.Blocks)
	}
}

func TestTrimFreesAndZeroes(t *testing.T) {
	pool := NewBlockPool()
	d := newDevice(t, 4, pool, nil)
	d.WriteBlock(2, block(9, 512))
	if err := d.Trim(2); err != nil {
		t.Fatalf("Trim: %v", err)
	}
	if st := pool.Stats(); st.Blocks != 0 {
		t.Fatalf("pool blocks = %d, want 0", st.Blocks)
	}
	got, _ := d.ReadBlock(2)
	if !bytes.Equal(got, make([]byte, 512)) {
		t.Fatal("trimmed block not zeroed")
	}
	// Trimming an unwritten block is a no-op.
	if err := d.Trim(3); err != nil {
		t.Fatalf("Trim(unwritten): %v", err)
	}
}

func TestSharedBlockSurvivesOneTrim(t *testing.T) {
	pool := NewBlockPool()
	d := newDevice(t, 4, pool, nil)
	data := block(5, 512)
	d.WriteBlock(0, data)
	d.WriteBlock(1, data)
	d.Trim(0)
	got, err := d.ReadBlock(1)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("shared block lost after one trim: %v", err)
	}
}

func TestWriteAtReadAtRMW(t *testing.T) {
	d := newDevice(t, 16, nil, nil)
	payload := []byte("hello, unaligned world spanning blocks!")
	off := int64(500) // straddles blocks 0 and 1
	n, err := d.WriteAt(payload, off)
	if err != nil || n != len(payload) {
		t.Fatalf("WriteAt = (%d, %v)", n, err)
	}
	got := make([]byte, len(payload))
	if _, err := d.ReadAt(got, off); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("ReadAt = %q, want %q", got, payload)
	}
	// Bytes around the payload must be untouched zeros.
	pre := make([]byte, 10)
	d.ReadAt(pre, off-10)
	if !bytes.Equal(pre, make([]byte, 10)) {
		t.Fatal("RMW corrupted bytes before the write")
	}
}

func TestWriteAtBounds(t *testing.T) {
	d := newDevice(t, 2, nil, nil)
	if _, err := d.WriteAt(make([]byte, 10), d.Size()-5); err == nil {
		t.Fatal("write past end accepted")
	}
	if _, err := d.ReadAt(make([]byte, 10), -1); err == nil {
		t.Fatal("negative read accepted")
	}
}

// Property: the device behaves like a flat buffer under random aligned
// block writes and trims, while physical blocks never exceed unique
// content count.
func TestQuickDeviceVsShadow(t *testing.T) {
	pool := NewBlockPool()
	d := newDevice(t, 32, pool, nil)
	shadow := make([]byte, d.Size())
	rng := rand.New(rand.NewSource(1))

	f := func(lbaSeed uint8, contentSeed uint8, trim bool) bool {
		lba := int(lbaSeed) % 32
		if trim {
			if err := d.Trim(lba); err != nil {
				return false
			}
			copy(shadow[lba*512:(lba+1)*512], make([]byte, 512))
		} else {
			// Small content alphabet to force dedup.
			data := block(contentSeed%8, 512)
			if err := d.WriteBlock(lba, data); err != nil {
				return false
			}
			copy(shadow[lba*512:(lba+1)*512], data)
		}
		checkLBA := rng.Intn(32)
		got, err := d.ReadBlock(checkLBA)
		if err != nil {
			return false
		}
		if !bytes.Equal(got, shadow[checkLBA*512:(checkLBA+1)*512]) {
			return false
		}
		return pool.Stats().Blocks <= 8 // at most 8 distinct contents
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
