// Package chunk splits data streams into chunks for deduplication.
//
// The paper's client application "collect[s] changes in local data" and
// "calculat[es] data fingerprints" over chunks of non-overlapping data
// blocks, citing the fixed-size chunking of DDFS-style systems (8 KB for
// the Time Machine workload, 4 KB for the FIU traces). This package
// provides that fixed-size chunker plus a content-defined chunker (Gear
// rolling hash), the standard upgrade that keeps chunk boundaries stable
// under insertions — useful for the backup client example and for
// generating realistic chunk streams from real bytes.
package chunk

import (
	"errors"
	"fmt"
	"io"
	"math/rand"

	"shhc/internal/fingerprint"
)

// Chunk is one unit of deduplication.
type Chunk struct {
	// Data is the chunk payload. The slice is owned by the caller after
	// Next returns; chunkers never reuse it.
	Data []byte
	// FP is the SHA-1 fingerprint of Data.
	FP fingerprint.Fingerprint
	// Offset is the chunk's byte offset in the original stream.
	Offset int64
}

// Chunker produces consecutive chunks from a stream until io.EOF.
type Chunker interface {
	// Next returns the next chunk, or io.EOF after the final chunk.
	Next() (Chunk, error)
}

// FixedChunker splits a stream into fixed-size blocks (the paper's
// "most common deduplication technique ... splits data into chunks of
// non-overlapping data blocks").
type FixedChunker struct {
	r      io.Reader
	size   int
	offset int64
	done   bool
}

// NewFixed creates a fixed-size chunker. size must be positive.
func NewFixed(r io.Reader, size int) (*FixedChunker, error) {
	if size <= 0 {
		return nil, fmt.Errorf("chunk: fixed size must be positive, got %d", size)
	}
	return &FixedChunker{r: r, size: size}, nil
}

// Next returns the next fixed-size chunk (the last one may be short).
func (c *FixedChunker) Next() (Chunk, error) {
	if c.done {
		return Chunk{}, io.EOF
	}
	buf := make([]byte, c.size)
	n, err := io.ReadFull(c.r, buf)
	if n == 0 {
		c.done = true
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return Chunk{}, io.EOF
		}
		return Chunk{}, fmt.Errorf("chunk: read: %w", err)
	}
	if err != nil {
		// Short final chunk (EOF) or a real error.
		if err != io.EOF && !errors.Is(err, io.ErrUnexpectedEOF) {
			return Chunk{}, fmt.Errorf("chunk: read: %w", err)
		}
		c.done = true
	}
	buf = buf[:n]
	ch := Chunk{Data: buf, FP: fingerprint.FromData(buf), Offset: c.offset}
	c.offset += int64(n)
	return ch, nil
}

// GearConfig tunes the content-defined chunker.
type GearConfig struct {
	// Min, Avg, Max bound chunk sizes. Defaults: 2 KiB / 8 KiB / 64 KiB.
	Min, Avg, Max int
	// Seed derives the gear table; all chunkers that should agree on
	// boundaries must share it. Default 0.
	Seed int64
}

func (c *GearConfig) fill() error {
	if c.Min == 0 && c.Avg == 0 && c.Max == 0 {
		c.Min, c.Avg, c.Max = 2048, 8192, 65536
	}
	if c.Min <= 0 || c.Avg <= 0 || c.Max <= 0 {
		return fmt.Errorf("chunk: gear sizes must be positive (min=%d avg=%d max=%d)", c.Min, c.Avg, c.Max)
	}
	if c.Min > c.Avg || c.Avg > c.Max {
		return fmt.Errorf("chunk: need min <= avg <= max (min=%d avg=%d max=%d)", c.Min, c.Avg, c.Max)
	}
	if c.Avg&(c.Avg-1) != 0 {
		return fmt.Errorf("chunk: avg must be a power of two, got %d", c.Avg)
	}
	return nil
}

// GearChunker implements Gear-based content-defined chunking: a rolling
// hash over a 64-entry-window equivalent (the gear hash shifts one byte
// in per step) cut where hash & mask == 0.
type GearChunker struct {
	r      io.Reader
	cfg    GearConfig
	table  [256]uint64
	mask   uint64
	offset int64

	buf  []byte // unconsumed readahead
	done bool
}

// NewGear creates a content-defined chunker.
func NewGear(r io.Reader, cfg GearConfig) (*GearChunker, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	g := &GearChunker{r: r, cfg: cfg, mask: uint64(cfg.Avg - 1)}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x47454152)) // "GEAR"
	for i := range g.table {
		g.table[i] = rng.Uint64()
	}
	return g, nil
}

// Next returns the next content-defined chunk.
func (g *GearChunker) Next() (Chunk, error) {
	if g.done && len(g.buf) == 0 {
		return Chunk{}, io.EOF
	}
	cut := g.findCut()
	for cut < 0 && !g.done {
		// Need more data: grow the readahead by up to Max bytes.
		tmp := make([]byte, g.cfg.Max)
		n, err := g.r.Read(tmp)
		if n > 0 {
			g.buf = append(g.buf, tmp[:n]...)
		}
		if err != nil {
			if err != io.EOF {
				return Chunk{}, fmt.Errorf("chunk: read: %w", err)
			}
			g.done = true
		}
		cut = g.findCut()
	}
	if cut < 0 {
		// Stream ended: emit the remainder.
		cut = len(g.buf)
	}
	if cut == 0 {
		return Chunk{}, io.EOF
	}
	data := make([]byte, cut)
	copy(data, g.buf[:cut])
	g.buf = g.buf[cut:]
	ch := Chunk{Data: data, FP: fingerprint.FromData(data), Offset: g.offset}
	g.offset += int64(cut)
	return ch, nil
}

// findCut scans the readahead for a chunk boundary, returning the cut
// length or -1 if more data is needed.
func (g *GearChunker) findCut() int {
	if len(g.buf) == 0 {
		return -1
	}
	if len(g.buf) >= g.cfg.Max {
		// Look for a natural cut within [Min, Max); force Max otherwise.
		if cut := g.scan(g.cfg.Min, g.cfg.Max); cut > 0 {
			return cut
		}
		return g.cfg.Max
	}
	if len(g.buf) < g.cfg.Min {
		return -1
	}
	if cut := g.scan(g.cfg.Min, len(g.buf)); cut > 0 {
		return cut
	}
	return -1
}

// scan looks for the first boundary in buf[min:end) and returns the cut
// length (exclusive) or -1. The gear hash warms up over the Min prefix so
// boundaries depend only on content, not read segmentation.
func (g *GearChunker) scan(min, end int) int {
	var h uint64
	// Warm the hash over the 64 bytes before min (or from 0).
	start := min - 64
	if start < 0 {
		start = 0
	}
	for i := start; i < min; i++ {
		h = (h << 1) + g.table[g.buf[i]]
	}
	for i := min; i < end; i++ {
		h = (h << 1) + g.table[g.buf[i]]
		if h&g.mask == 0 {
			return i + 1
		}
	}
	return -1
}

// All drains a chunker into a slice (testing and small inputs).
func All(c Chunker) ([]Chunk, error) {
	var chunks []Chunk
	for {
		ch, err := c.Next()
		if err == io.EOF {
			return chunks, nil
		}
		if err != nil {
			return nil, err
		}
		chunks = append(chunks, ch)
	}
}

// Reassemble concatenates chunk payloads, verifying offsets are contiguous.
func Reassemble(chunks []Chunk) ([]byte, error) {
	var out []byte
	var expect int64
	for i, ch := range chunks {
		if ch.Offset != expect {
			return nil, fmt.Errorf("chunk: gap at chunk %d: offset %d, want %d", i, ch.Offset, expect)
		}
		out = append(out, ch.Data...)
		expect += int64(len(ch.Data))
	}
	return out, nil
}
