package chunk

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"shhc/internal/fingerprint"
)

func randomBytes(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, n)
	rng.Read(buf)
	return buf
}

func TestFixedChunkerSizes(t *testing.T) {
	data := randomBytes(10000, 1)
	c, err := NewFixed(bytes.NewReader(data), 4096)
	if err != nil {
		t.Fatalf("NewFixed: %v", err)
	}
	chunks, err := All(c)
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	if len(chunks) != 3 {
		t.Fatalf("got %d chunks, want 3", len(chunks))
	}
	if len(chunks[0].Data) != 4096 || len(chunks[1].Data) != 4096 || len(chunks[2].Data) != 10000-8192 {
		t.Fatalf("chunk sizes = %d/%d/%d", len(chunks[0].Data), len(chunks[1].Data), len(chunks[2].Data))
	}
}

func TestFixedChunkerReassembly(t *testing.T) {
	data := randomBytes(33333, 2)
	c, _ := NewFixed(bytes.NewReader(data), 4096)
	chunks, err := All(c)
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	got, err := Reassemble(chunks)
	if err != nil {
		t.Fatalf("Reassemble: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("reassembled data differs from input")
	}
}

func TestFixedChunkerEmptyInput(t *testing.T) {
	c, _ := NewFixed(bytes.NewReader(nil), 4096)
	if _, err := c.Next(); err != io.EOF {
		t.Fatalf("Next on empty input = %v, want EOF", err)
	}
}

func TestFixedChunkerValidation(t *testing.T) {
	if _, err := NewFixed(bytes.NewReader(nil), 0); err == nil {
		t.Fatal("NewFixed(0) succeeded")
	}
}

func TestFixedChunkerFingerprints(t *testing.T) {
	data := randomBytes(8192, 3)
	c, _ := NewFixed(bytes.NewReader(data), 4096)
	chunks, _ := All(c)
	for i, ch := range chunks {
		if ch.FP != fingerprint.FromData(ch.Data) {
			t.Fatalf("chunk %d fingerprint mismatch", i)
		}
	}
	// Identical blocks produce identical fingerprints (the dedup premise).
	same := append(append([]byte(nil), data[:4096]...), data[:4096]...)
	c2, _ := NewFixed(bytes.NewReader(same), 4096)
	dup, _ := All(c2)
	if dup[0].FP != dup[1].FP {
		t.Fatal("identical blocks got different fingerprints")
	}
}

func TestGearChunkerReassembly(t *testing.T) {
	data := randomBytes(200000, 4)
	g, err := NewGear(bytes.NewReader(data), GearConfig{})
	if err != nil {
		t.Fatalf("NewGear: %v", err)
	}
	chunks, err := All(g)
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	got, err := Reassemble(chunks)
	if err != nil {
		t.Fatalf("Reassemble: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("reassembled data differs from input")
	}
}

func TestGearChunkerBounds(t *testing.T) {
	data := randomBytes(500000, 5)
	cfg := GearConfig{Min: 2048, Avg: 8192, Max: 65536}
	g, _ := NewGear(bytes.NewReader(data), cfg)
	chunks, _ := All(g)
	if len(chunks) < 2 {
		t.Fatalf("got %d chunks from 500KB", len(chunks))
	}
	for i, ch := range chunks[:len(chunks)-1] { // final chunk may be short
		if len(ch.Data) < cfg.Min || len(ch.Data) > cfg.Max {
			t.Fatalf("chunk %d size %d outside [%d, %d]", i, len(ch.Data), cfg.Min, cfg.Max)
		}
	}
	// Mean in the right ballpark (within 4x of Avg either way).
	mean := 500000 / len(chunks)
	if mean < cfg.Avg/4 || mean > cfg.Avg*4 {
		t.Fatalf("mean chunk size %d far from avg %d", mean, cfg.Avg)
	}
}

func TestGearChunkerShiftResistance(t *testing.T) {
	// The content-defined property: inserting bytes at the front must not
	// change most chunk boundaries (fixed-size chunking changes all).
	data := randomBytes(300000, 6)
	shifted := append(randomBytes(100, 7), data...)

	g1, _ := NewGear(bytes.NewReader(data), GearConfig{})
	g2, _ := NewGear(bytes.NewReader(shifted), GearConfig{})
	c1, _ := All(g1)
	c2, _ := All(g2)

	fps1 := map[fingerprint.Fingerprint]bool{}
	for _, ch := range c1 {
		fps1[ch.FP] = true
	}
	shared := 0
	for _, ch := range c2 {
		if fps1[ch.FP] {
			shared++
		}
	}
	if float64(shared) < 0.5*float64(len(c1)) {
		t.Fatalf("only %d/%d chunks survived a 100-byte prefix insertion", shared, len(c1))
	}
}

func TestGearChunkerDeterministicAcrossSegmentation(t *testing.T) {
	// Boundaries must not depend on how the reader splits its reads.
	data := randomBytes(150000, 8)
	g1, _ := NewGear(bytes.NewReader(data), GearConfig{})
	c1, _ := All(g1)

	g2, _ := NewGear(iotest1ByteReader{bytes.NewReader(data)}, GearConfig{})
	c2, _ := All(g2)

	if len(c1) != len(c2) {
		t.Fatalf("chunk counts differ across read segmentation: %d vs %d", len(c1), len(c2))
	}
	for i := range c1 {
		if c1[i].FP != c2[i].FP {
			t.Fatalf("chunk %d differs across read segmentation", i)
		}
	}
}

// iotest1ByteReader yields at most 7 bytes per Read to stress buffering.
type iotest1ByteReader struct{ r io.Reader }

func (r iotest1ByteReader) Read(p []byte) (int, error) {
	if len(p) > 7 {
		p = p[:7]
	}
	return r.r.Read(p)
}

func TestGearConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  GearConfig
	}{
		{name: "negative min", cfg: GearConfig{Min: -1, Avg: 8192, Max: 65536}},
		{name: "min above avg", cfg: GearConfig{Min: 9000, Avg: 8192, Max: 65536}},
		{name: "avg above max", cfg: GearConfig{Min: 2048, Avg: 8192, Max: 4096}},
		{name: "avg not power of two", cfg: GearConfig{Min: 2048, Avg: 8000, Max: 65536}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewGear(bytes.NewReader(nil), tt.cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestGearChunkerEmptyInput(t *testing.T) {
	g, _ := NewGear(bytes.NewReader(nil), GearConfig{})
	if _, err := g.Next(); err != io.EOF {
		t.Fatalf("Next on empty input = %v, want EOF", err)
	}
}

func TestReassembleDetectsGaps(t *testing.T) {
	chunks := []Chunk{
		{Data: []byte("abc"), Offset: 0},
		{Data: []byte("def"), Offset: 5}, // gap
	}
	if _, err := Reassemble(chunks); err == nil {
		t.Fatal("Reassemble accepted a gap")
	}
}

// Property: fixed chunking reassembles to the identity for arbitrary data
// and chunk sizes.
func TestQuickFixedRoundTrip(t *testing.T) {
	f := func(data []byte, sizeSeed uint8) bool {
		size := int(sizeSeed%64) + 1
		c, err := NewFixed(bytes.NewReader(data), size)
		if err != nil {
			return false
		}
		chunks, err := All(c)
		if err != nil {
			return false
		}
		got, err := Reassemble(chunks)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: gear chunking reassembles to the identity.
func TestQuickGearRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		g, err := NewGear(bytes.NewReader(data), GearConfig{Min: 16, Avg: 64, Max: 256})
		if err != nil {
			return false
		}
		chunks, err := All(g)
		if err != nil {
			return false
		}
		got, err := Reassemble(chunks)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
