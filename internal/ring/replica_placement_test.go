package ring

import (
	"fmt"
	"testing"

	"shhc/internal/fingerprint"
)

// TestReplicaPlacementProperty is the table-driven placement property for
// replication: for every membership size and every replica count, the
// successor set returned by LookupN has exactly min(replicas, nodes)
// entries, all entries are distinct physical nodes (the owner never
// appears twice), and the first entry is always the Lookup owner.
func TestReplicaPlacementProperty(t *testing.T) {
	const fps = 2000
	for nodes := 1; nodes <= 8; nodes++ {
		for replicas := 1; replicas <= 5; replicas++ {
			t.Run(fmt.Sprintf("nodes=%d/replicas=%d", nodes, replicas), func(t *testing.T) {
				r := New(32)
				for i := 0; i < nodes; i++ {
					if err := r.Add(NodeID(fmt.Sprintf("node-%d", i))); err != nil {
						t.Fatalf("Add: %v", err)
					}
				}
				want := replicas
				if want > nodes {
					want = nodes
				}
				for i := uint64(0); i < fps; i++ {
					fp := fingerprint.FromUint64(i)
					set, err := r.LookupN(fp, replicas)
					if err != nil {
						t.Fatalf("LookupN(%d): %v", i, err)
					}
					if len(set) != want {
						t.Fatalf("LookupN(%d) returned %d nodes, want min(%d, %d) = %d",
							i, len(set), replicas, nodes, want)
					}
					seen := make(map[NodeID]struct{}, len(set))
					for _, id := range set {
						if _, dup := seen[id]; dup {
							t.Fatalf("LookupN(%d) contains %q twice: %v", i, id, set)
						}
						seen[id] = struct{}{}
					}
					owner, err := r.Lookup(fp)
					if err != nil {
						t.Fatalf("Lookup(%d): %v", i, err)
					}
					if set[0] != owner {
						t.Fatalf("LookupN(%d)[0] = %q, want owner %q", i, set[0], owner)
					}
				}
			})
		}
	}
}

// TestReplicaPlacementAcrossMembershipChange checks that the property holds
// through Add/Remove churn and that lookupNHash agrees with LookupN for the
// fingerprint's own prefix hash.
func TestReplicaPlacementAcrossMembershipChange(t *testing.T) {
	r := New(32)
	for i := 0; i < 5; i++ {
		if err := r.Add(NodeID(fmt.Sprintf("node-%d", i))); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	check := func(nodes int) {
		t.Helper()
		want := 3
		if want > nodes {
			want = nodes
		}
		for i := uint64(0); i < 500; i++ {
			fp := fingerprint.FromUint64(i)
			set, err := r.LookupN(fp, 3)
			if err != nil {
				t.Fatalf("LookupN: %v", err)
			}
			if len(set) != want {
				t.Fatalf("LookupN(%d) = %v, want %d nodes", i, set, want)
			}
			seen := make(map[NodeID]struct{}, len(set))
			for _, id := range set {
				if _, dup := seen[id]; dup {
					t.Fatalf("duplicate node %q in %v", id, set)
				}
				seen[id] = struct{}{}
			}
			byHash, err := r.lookupNHash(fp.Prefix64(), 3)
			if err != nil {
				t.Fatalf("lookupNHash: %v", err)
			}
			if len(byHash) != len(set) {
				t.Fatalf("lookupNHash disagrees with LookupN: %v vs %v", byHash, set)
			}
			for j := range set {
				if byHash[j] != set[j] {
					t.Fatalf("lookupNHash disagrees with LookupN: %v vs %v", byHash, set)
				}
			}
		}
	}
	check(5)
	if err := r.Remove("node-2"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	check(4)
	if err := r.Remove("node-4"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	check(3)
	if err := r.Add("node-2"); err != nil {
		t.Fatalf("re-Add: %v", err)
	}
	check(4)
}
