package ring

import (
	"fmt"
	"testing"

	"shhc/internal/fingerprint"
)

func benchRing(b *testing.B, nodes, vnodes int) *Ring {
	b.Helper()
	r := New(vnodes)
	for i := 0; i < nodes; i++ {
		if err := r.Add(NodeID(fmt.Sprintf("node-%d", i))); err != nil {
			b.Fatal(err)
		}
	}
	return r
}

func BenchmarkLookup(b *testing.B) {
	for _, nodes := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			r := benchRing(b, nodes, DefaultVirtualNodes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.Lookup(fingerprint.FromUint64(uint64(i))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLookupN(b *testing.B) {
	r := benchRing(b, 16, DefaultVirtualNodes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.LookupN(fingerprint.FromUint64(uint64(i)), 3); err != nil {
			b.Fatal(err)
		}
	}
}
