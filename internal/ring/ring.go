// Package ring partitions the fingerprint space across SHHC hash nodes.
//
// The paper's cluster is "like the Chord system ... made up of a set of
// connected hash nodes, which hold a range of hash values", but runs in a
// "reasonably structured and relatively static environment" — so routing is
// a local table lookup (the per-node "Node Routing" box in Figure 3), not a
// multi-hop overlay. This package provides that table: a consistent hash
// ring with virtual nodes, giving the near-uniform placement the paper
// measures in Figure 6 (~25% of entries per node at N=4), plus cheap
// membership changes for the dynamic-scaling extension.
package ring

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"shhc/internal/fingerprint"
)

// DefaultVirtualNodes is the number of ring points per physical node.
// 128 keeps the max/min partition spread under ~1.3x for small clusters.
const DefaultVirtualNodes = 128

// NodeID identifies a physical hash node in the cluster.
type NodeID string

type point struct {
	hash uint64
	node NodeID
}

// Ring is a consistent-hash router over the 64-bit fingerprint prefix
// space. It is safe for concurrent use; lookups take a read lock only.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []point // sorted by hash
	nodes  map[NodeID]struct{}
}

// New creates a ring with the given number of virtual nodes per physical
// node. vnodes <= 0 selects DefaultVirtualNodes.
func New(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[NodeID]struct{})}
}

// pointHash derives a ring position for a (node, replica) pair. SHA-1 keeps
// placement aligned with the fingerprint distribution itself.
func pointHash(id NodeID, replica int) uint64 {
	sum := sha1.Sum([]byte(string(id) + "#" + strconv.Itoa(replica)))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a node's virtual points. Adding an existing node is an error:
// membership is managed by the cluster, and a duplicate add indicates a
// bookkeeping bug.
func (r *Ring) Add(id NodeID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[id]; ok {
		return fmt.Errorf("ring: node %q already present", id)
	}
	r.nodes[id] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hash: pointHash(id, i), node: id})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return nil
}

// Remove deletes a node's virtual points (node decommission / failure).
func (r *Ring) Remove(id NodeID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[id]; !ok {
		return fmt.Errorf("ring: node %q not present", id)
	}
	delete(r.nodes, id)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != id {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return nil
}

// Lookup returns the node owning the fingerprint: the first ring point at
// or clockwise from the fingerprint's prefix hash.
func (r *Ring) Lookup(fp fingerprint.Fingerprint) (NodeID, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", fmt.Errorf("ring: empty ring")
	}
	return r.successor(fp.Prefix64(), 0), nil
}

// LookupN returns the n distinct nodes responsible for the fingerprint:
// the owner followed by its distinct successors. Used for replication.
// If the ring has fewer than n nodes, all nodes are returned.
func (r *Ring) LookupN(fp fingerprint.Fingerprint, n int) ([]NodeID, error) {
	return r.lookupNHash(fp.Prefix64(), n)
}

// lookupNHash is LookupN keyed by a raw ring position instead of a
// fingerprint — the successor-set walk itself, shared with the placement
// property tests, which probe arbitrary ring positions directly.
func (r *Ring) lookupNHash(h uint64, n int) ([]NodeID, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil, fmt.Errorf("ring: empty ring")
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	result := make([]NodeID, 0, n)
	seen := make(map[NodeID]struct{}, n)
	idx := r.searchIdx(h)
	for i := 0; len(result) < n && i < len(r.points); i++ {
		p := r.points[(idx+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		result = append(result, p.node)
	}
	return result, nil
}

// successor returns the node at the (skip+1)-th distinct position clockwise
// from hash h. Callers hold at least a read lock.
func (r *Ring) successor(h uint64, skip int) NodeID {
	idx := r.searchIdx(h)
	return r.points[(idx+skip)%len(r.points)].node
}

func (r *Ring) searchIdx(h uint64) int {
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if idx == len(r.points) {
		idx = 0
	}
	return idx
}

// Nodes returns the current members in unspecified order.
func (r *Ring) Nodes() []NodeID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]NodeID, 0, len(r.nodes))
	for id := range r.nodes {
		out = append(out, id)
	}
	return out
}

// Len returns the number of physical nodes.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Balance describes how evenly the key space is divided.
type Balance struct {
	// Share maps each node to its fraction of the 64-bit key space.
	Share map[NodeID]float64
	// MaxOverMin is max share / min share; 1.0 is perfect balance.
	MaxOverMin float64
}

// Balance computes the key-space share owned by each node.
func (r *Ring) Balance() Balance {
	r.mu.RLock()
	defer r.mu.RUnlock()
	share := make(map[NodeID]float64, len(r.nodes))
	if len(r.points) == 0 {
		return Balance{Share: share}
	}
	total := float64(1 << 63 * 2) // 2^64 as float
	// A key routes to the first point at or clockwise after it, so the
	// arc *preceding* a point belongs to that point's node.
	for i, p := range r.points {
		var width uint64
		if i > 0 {
			width = p.hash - r.points[i-1].hash
		} else {
			// wraparound arc from the last point to the first
			width = p.hash - r.points[len(r.points)-1].hash
		}
		share[p.node] += float64(width) / total
	}
	b := Balance{Share: share, MaxOverMin: 1}
	minShare, maxShare := 2.0, 0.0
	for _, s := range share {
		if s < minShare {
			minShare = s
		}
		if s > maxShare {
			maxShare = s
		}
	}
	if minShare > 0 {
		b.MaxOverMin = maxShare / minShare
	}
	return b
}
