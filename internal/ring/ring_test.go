package ring

import (
	"fmt"
	"testing"
	"testing/quick"

	"shhc/internal/fingerprint"
)

func newRing(t *testing.T, n int) *Ring {
	t.Helper()
	r := New(DefaultVirtualNodes)
	for i := 0; i < n; i++ {
		if err := r.Add(NodeID(fmt.Sprintf("node-%d", i))); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	return r
}

func TestEmptyRingErrors(t *testing.T) {
	r := New(0)
	if _, err := r.Lookup(fingerprint.FromUint64(1)); err == nil {
		t.Fatal("Lookup on empty ring succeeded")
	}
	if _, err := r.LookupN(fingerprint.FromUint64(1), 2); err == nil {
		t.Fatal("LookupN on empty ring succeeded")
	}
}

func TestAddRemoveMembership(t *testing.T) {
	r := newRing(t, 3)
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if err := r.Add("node-0"); err == nil {
		t.Fatal("duplicate Add succeeded")
	}
	if err := r.Remove("node-1"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := r.Remove("node-1"); err == nil {
		t.Fatal("double Remove succeeded")
	}
	if r.Len() != 2 {
		t.Fatalf("Len after remove = %d, want 2", r.Len())
	}
	for _, id := range r.Nodes() {
		if id == "node-1" {
			t.Fatal("removed node still reported by Nodes()")
		}
	}
}

func TestLookupDeterministic(t *testing.T) {
	r := newRing(t, 4)
	fp := fingerprint.FromUint64(12345)
	first, err := r.Lookup(fp)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	for i := 0; i < 100; i++ {
		got, _ := r.Lookup(fp)
		if got != first {
			t.Fatalf("Lookup not deterministic: %s vs %s", got, first)
		}
	}
}

func TestLookupDistribution(t *testing.T) {
	// Figure 6 reproduction in miniature: ~25% per node at N=4.
	r := newRing(t, 4)
	counts := map[NodeID]int{}
	const n = 40000
	for i := 0; i < n; i++ {
		id, err := r.Lookup(fingerprint.FromUint64(uint64(i)))
		if err != nil {
			t.Fatalf("Lookup: %v", err)
		}
		counts[id]++
	}
	if len(counts) != 4 {
		t.Fatalf("keys landed on %d nodes, want 4", len(counts))
	}
	for id, c := range counts {
		share := float64(c) / n
		if share < 0.15 || share > 0.35 {
			t.Fatalf("node %s got %.1f%% of keys, want 25%% +/- 10", id, share*100)
		}
	}
}

func TestLookupNReplicas(t *testing.T) {
	r := newRing(t, 5)
	fp := fingerprint.FromUint64(777)
	replicas, err := r.LookupN(fp, 3)
	if err != nil {
		t.Fatalf("LookupN: %v", err)
	}
	if len(replicas) != 3 {
		t.Fatalf("got %d replicas, want 3", len(replicas))
	}
	seen := map[NodeID]bool{}
	for _, id := range replicas {
		if seen[id] {
			t.Fatalf("duplicate replica %s", id)
		}
		seen[id] = true
	}
	owner, _ := r.Lookup(fp)
	if replicas[0] != owner {
		t.Fatalf("first replica %s is not the owner %s", replicas[0], owner)
	}
}

func TestLookupNMoreThanNodes(t *testing.T) {
	r := newRing(t, 2)
	replicas, err := r.LookupN(fingerprint.FromUint64(1), 5)
	if err != nil {
		t.Fatalf("LookupN: %v", err)
	}
	if len(replicas) != 2 {
		t.Fatalf("got %d replicas, want all 2 nodes", len(replicas))
	}
}

func TestRemovalOnlyMovesKeysFromRemovedNode(t *testing.T) {
	// Consistent hashing's key property: removing a node relocates only
	// the keys it owned.
	r := newRing(t, 4)
	const n = 5000
	before := make([]NodeID, n)
	for i := 0; i < n; i++ {
		before[i], _ = r.Lookup(fingerprint.FromUint64(uint64(i)))
	}
	if err := r.Remove("node-2"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	for i := 0; i < n; i++ {
		after, _ := r.Lookup(fingerprint.FromUint64(uint64(i)))
		if before[i] != "node-2" && after != before[i] {
			t.Fatalf("key %d moved from surviving node %s to %s", i, before[i], after)
		}
		if after == "node-2" {
			t.Fatalf("key %d still routed to removed node", i)
		}
	}
}

func TestBalanceShares(t *testing.T) {
	r := newRing(t, 4)
	b := r.Balance()
	total := 0.0
	for _, s := range b.Share {
		total += s
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("shares sum to %v, want 1.0", total)
	}
	if b.MaxOverMin > 2.0 {
		t.Fatalf("MaxOverMin = %v, want <= 2.0 with %d vnodes", b.MaxOverMin, DefaultVirtualNodes)
	}
}

func TestBalancePredictsRouting(t *testing.T) {
	// Balance() must reflect where keys actually route, including with
	// few virtual nodes where arcs are uneven. Compare the keyspace
	// share against an empirical routing histogram.
	r := New(4) // deliberately coarse
	for i := 0; i < 4; i++ {
		r.Add(NodeID(fmt.Sprintf("n%d", i)))
	}
	const n = 200000
	counts := map[NodeID]float64{}
	for i := 0; i < n; i++ {
		id, err := r.Lookup(fingerprint.FromUint64(uint64(i)))
		if err != nil {
			t.Fatalf("Lookup: %v", err)
		}
		counts[id]++
	}
	shares := r.Balance().Share
	for id, c := range counts {
		empirical := c / n
		predicted := shares[id]
		if diff := empirical - predicted; diff > 0.02 || diff < -0.02 {
			t.Fatalf("node %s: empirical share %.3f vs Balance prediction %.3f", id, empirical, predicted)
		}
	}
}

func TestMoreVNodesImproveBalance(t *testing.T) {
	coarse := New(4)
	fine := New(512)
	for i := 0; i < 4; i++ {
		id := NodeID(fmt.Sprintf("n%d", i))
		coarse.Add(id)
		fine.Add(id)
	}
	if fine.Balance().MaxOverMin > coarse.Balance().MaxOverMin {
		t.Fatalf("more vnodes worsened balance: fine=%v coarse=%v",
			fine.Balance().MaxOverMin, coarse.Balance().MaxOverMin)
	}
}

// Property: Lookup always returns a member node, and LookupN(k)[0] equals
// Lookup, for arbitrary fingerprints.
func TestQuickLookupConsistency(t *testing.T) {
	r := newRing(t, 3)
	members := map[NodeID]bool{}
	for _, id := range r.Nodes() {
		members[id] = true
	}
	f := func(seed uint64) bool {
		fp := fingerprint.FromUint64(seed)
		owner, err := r.Lookup(fp)
		if err != nil || !members[owner] {
			return false
		}
		replicas, err := r.LookupN(fp, 2)
		return err == nil && replicas[0] == owner
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
