package bloom

import (
	"testing"

	"shhc/internal/fingerprint"
)

func BenchmarkAdd(b *testing.B) {
	f := New(1<<22, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Add(fingerprint.FromUint64(uint64(i)))
	}
}

func BenchmarkMayContainHit(b *testing.B) {
	f := New(1<<20, 0.01)
	const n = 1 << 18
	for i := uint64(0); i < n; i++ {
		f.Add(fingerprint.FromUint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !f.MayContain(fingerprint.FromUint64(uint64(i % n))) {
			b.Fatal("false negative")
		}
	}
}

func BenchmarkMayContainMiss(b *testing.B) {
	f := New(1<<20, 0.01)
	for i := uint64(0); i < 1<<18; i++ {
		f.Add(fingerprint.FromUint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MayContain(fingerprint.FromUint64(uint64(1<<40 + i)))
	}
}
