// Package bloom implements the Bloom filter each SHHC hash node keeps in
// RAM to represent the set of fingerprints stored in its on-SSD hash table
// (paper §III.B: "a bloom filter is used to represent the hash values in
// the database").
//
// The filter never reports a stored fingerprint as absent (no false
// negatives); with the sizing used by the node it reports an absent
// fingerprint as possibly-present with probability ~FalsePositiveRate.
// A negative answer lets the node skip the SSD probe entirely for new data,
// which is the common case in low-redundancy backup workloads.
package bloom

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"shhc/internal/fingerprint"
)

// Filter is a standard Bloom filter over fingerprints using double hashing:
// the SHA-1 digest already contains two independent 64-bit values, so the
// i-th probe position is h1 + i*h2 (Kirsch–Mitzenmatcher construction).
//
// Add and MayContain are safe for concurrent use: every bit-array word is
// read and written atomically, and bits are only ever set, never cleared.
// A MayContain racing an Add of a *different* fingerprint may observe a
// partially published Add, which can only delay a positive answer — it can
// never turn an added fingerprint into a false negative, because the bits
// of any fingerprint whose Add has completed are all visible. Callers that
// need "Add then MayContain" ordering for the *same* fingerprint must
// serialize those two calls themselves (the hybrid node's per-stripe lock
// does exactly that). UnmarshalBinary is not safe to race with any other
// method: it swaps the bit array wholesale.
type Filter struct {
	bits  []uint64
	nbits uint64
	k     int
	n     atomic.Uint64 // elements added
}

// New creates a filter sized for expectedItems with the given target false
// positive rate. It panics on non-positive expectedItems or out-of-range
// fpRate, because both indicate a programming error in the caller.
func New(expectedItems int, fpRate float64) *Filter {
	if expectedItems <= 0 {
		panic("bloom: expectedItems must be positive")
	}
	if fpRate <= 0 || fpRate >= 1 {
		panic("bloom: fpRate must be in (0, 1)")
	}
	nbits := optimalBits(expectedItems, fpRate)
	k := optimalHashes(nbits, uint64(expectedItems))
	return &Filter{
		bits:  make([]uint64, (nbits+63)/64),
		nbits: nbits,
		k:     k,
	}
}

// optimalBits returns m = -n*ln(p)/(ln 2)^2, rounded up to a multiple of 64.
func optimalBits(n int, p float64) uint64 {
	m := math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2))
	bits := uint64(m)
	if bits < 64 {
		bits = 64
	}
	return (bits + 63) / 64 * 64
}

// optimalHashes returns k = m/n * ln 2, at least 1.
func optimalHashes(m, n uint64) int {
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return k
}

// Add inserts the fingerprint into the filter.
func (f *Filter) Add(fp fingerprint.Fingerprint) {
	h1, h2 := fp.Prefix64(), fp.Bucket64()|1
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.nbits
		word, mask := &f.bits[pos/64], uint64(1)<<(pos%64)
		if atomic.LoadUint64(word)&mask == 0 {
			atomic.OrUint64(word, mask)
		}
	}
	f.n.Add(1)
}

// MayContain reports whether the fingerprint may have been added. A false
// result is definitive: the fingerprint was never added.
func (f *Filter) MayContain(fp fingerprint.Fingerprint) bool {
	h1, h2 := fp.Prefix64(), fp.Bucket64()|1
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.nbits
		if atomic.LoadUint64(&f.bits[pos/64])&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// Len returns the number of Add calls.
func (f *Filter) Len() int { return int(f.n.Load()) }

// Bits returns the size of the bit array.
func (f *Filter) Bits() uint64 { return f.nbits }

// Hashes returns the number of hash probes per operation.
func (f *Filter) Hashes() int { return f.k }

// EstimatedFPRate returns the expected false positive probability given the
// current fill: (1 - e^(-k*n/m))^k.
func (f *Filter) EstimatedFPRate() float64 {
	n := f.n.Load()
	if n == 0 {
		return 0
	}
	exp := -float64(f.k) * float64(n) / float64(f.nbits)
	return math.Pow(1-math.Exp(exp), float64(f.k))
}

// marshal header: magic(4) version(1) k(1) pad(2) nbits(8) n(8)
const (
	marshalMagic   = "SBF1"
	marshalHdrSize = 4 + 1 + 1 + 2 + 8 + 8
)

// MarshalBinary serializes the filter (node checkpointing). It loads each
// word atomically, so it may run concurrently with Add; an Add racing the
// snapshot is either wholly or partially included, which on restore can only
// cost an extra SSD probe, never a false negative for completed Adds.
func (f *Filter) MarshalBinary() ([]byte, error) {
	buf := make([]byte, marshalHdrSize+len(f.bits)*8)
	copy(buf[0:4], marshalMagic)
	buf[4] = 1
	buf[5] = byte(f.k)
	binary.BigEndian.PutUint64(buf[8:16], f.nbits)
	binary.BigEndian.PutUint64(buf[16:24], f.n.Load())
	for i := range f.bits {
		binary.BigEndian.PutUint64(buf[marshalHdrSize+i*8:], atomic.LoadUint64(&f.bits[i]))
	}
	return buf, nil
}

// UnmarshalBinary restores a filter serialized by MarshalBinary.
func (f *Filter) UnmarshalBinary(data []byte) error {
	if len(data) < marshalHdrSize {
		return errors.New("bloom: unmarshal: truncated header")
	}
	if string(data[0:4]) != marshalMagic {
		return fmt.Errorf("bloom: unmarshal: bad magic %q", data[0:4])
	}
	if data[4] != 1 {
		return fmt.Errorf("bloom: unmarshal: unsupported version %d", data[4])
	}
	k := int(data[5])
	nbits := binary.BigEndian.Uint64(data[8:16])
	n := binary.BigEndian.Uint64(data[16:24])
	words := int((nbits + 63) / 64)
	if len(data) != marshalHdrSize+words*8 {
		return fmt.Errorf("bloom: unmarshal: want %d bytes, got %d", marshalHdrSize+words*8, len(data))
	}
	bits := make([]uint64, words)
	for i := range bits {
		bits[i] = binary.BigEndian.Uint64(data[marshalHdrSize+i*8:])
	}
	//lint:ignore atomicmix UnmarshalBinary replaces the whole filter pre-publication; the doc comment requires callers not to race it with Add/Test.
	f.bits, f.nbits, f.k = bits, nbits, k
	f.n.Store(n)
	return nil
}

// SizeBytes returns the in-memory size of the bit array, for capacity
// planning (the paper keeps <bloom, filepath> entries in node RAM).
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }
