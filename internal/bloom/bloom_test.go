package bloom

import (
	"testing"
	"testing/quick"

	"shhc/internal/fingerprint"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(10000, 0.01)
	for i := uint64(0); i < 10000; i++ {
		f.Add(fingerprint.FromUint64(i))
	}
	for i := uint64(0); i < 10000; i++ {
		if !f.MayContain(fingerprint.FromUint64(i)) {
			t.Fatalf("false negative for element %d", i)
		}
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	const n = 50000
	const target = 0.01
	f := New(n, target)
	for i := uint64(0); i < n; i++ {
		f.Add(fingerprint.FromUint64(i))
	}
	fps := 0
	const probes = 50000
	for i := uint64(n); i < n+probes; i++ {
		if f.MayContain(fingerprint.FromUint64(i)) {
			fps++
		}
	}
	rate := float64(fps) / probes
	if rate > target*3 {
		t.Fatalf("observed FP rate %.4f, want <= %.4f", rate, target*3)
	}
}

func TestEstimatedFPRate(t *testing.T) {
	f := New(1000, 0.01)
	if got := f.EstimatedFPRate(); got != 0 {
		t.Fatalf("empty filter FP estimate = %v, want 0", got)
	}
	for i := uint64(0); i < 1000; i++ {
		f.Add(fingerprint.FromUint64(i))
	}
	est := f.EstimatedFPRate()
	if est <= 0 || est > 0.05 {
		t.Fatalf("estimated FP rate at design fill = %v, want (0, 0.05]", est)
	}
}

func TestSizingMonotonicity(t *testing.T) {
	small := New(1000, 0.01)
	big := New(100000, 0.01)
	if small.Bits() >= big.Bits() {
		t.Fatalf("filter for more items must use more bits: %d vs %d", small.Bits(), big.Bits())
	}
	loose := New(1000, 0.1)
	tight := New(1000, 0.001)
	if loose.Bits() >= tight.Bits() {
		t.Fatalf("tighter FP target must use more bits: %d vs %d", loose.Bits(), tight.Bits())
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	tests := []struct {
		name  string
		items int
		rate  float64
	}{
		{name: "zero items", items: 0, rate: 0.01},
		{name: "negative items", items: -5, rate: 0.01},
		{name: "zero rate", items: 10, rate: 0},
		{name: "rate one", items: 10, rate: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("New did not panic")
				}
			}()
			New(tt.items, tt.rate)
		})
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := New(5000, 0.02)
	for i := uint64(0); i < 3000; i++ {
		f.Add(fingerprint.FromUint64(i))
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var g Filter
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if g.Len() != f.Len() || g.Bits() != f.Bits() || g.Hashes() != f.Hashes() {
		t.Fatalf("restored filter shape differs: %d/%d/%d vs %d/%d/%d",
			g.Len(), g.Bits(), g.Hashes(), f.Len(), f.Bits(), f.Hashes())
	}
	for i := uint64(0); i < 3000; i++ {
		if !g.MayContain(fingerprint.FromUint64(i)) {
			t.Fatalf("restored filter lost element %d", i)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	f := New(100, 0.01)
	good, _ := f.MarshalBinary()

	tests := []struct {
		name string
		give []byte
	}{
		{name: "truncated", give: good[:10]},
		{name: "bad magic", give: append([]byte("XXXX"), good[4:]...)},
		{name: "bad version", give: func() []byte {
			b := append([]byte(nil), good...)
			b[4] = 9
			return b
		}()},
		{name: "length mismatch", give: good[:len(good)-8]},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var g Filter
			if err := g.UnmarshalBinary(tt.give); err == nil {
				t.Fatal("unmarshal succeeded, want error")
			}
		})
	}
}

// Property: anything added is always reported present, under arbitrary
// interleavings of adds.
func TestQuickNoFalseNegatives(t *testing.T) {
	f := func(seeds []uint64) bool {
		if len(seeds) == 0 {
			return true
		}
		fl := New(len(seeds), 0.05)
		for _, s := range seeds {
			fl.Add(fingerprint.FromUint64(s))
		}
		for _, s := range seeds {
			if !fl.MayContain(fingerprint.FromUint64(s)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
