package bloom

import (
	"testing"

	"shhc/internal/fingerprint"
)

// TestAllocMayContain pins the Bloom walk on the lookup hot path at zero
// allocations per probe — it runs before every SSD read, so a single
// escape here would show up at full lookup rate.
func TestAllocMayContain(t *testing.T) {
	f := New(1<<16, 0.01)
	fps := make([]fingerprint.Fingerprint, 256)
	for i := range fps {
		fps[i] = fingerprint.FromUint64(uint64(i))
		if i%2 == 0 {
			f.Add(fps[i])
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		f.MayContain(fps[i%len(fps)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("MayContain allocates %v/op; want 0", allocs)
	}
}
