package bloom

// A fixed Bloom filter shares the fixed-capacity bug this repo's hash
// table had: size it for N, add 8N, and the false-positive rate collapses
// toward 1 — every "definitely absent" answer the node relies on to skip
// SSD probes disappears. Scalable is the chained/partitioned filter of
// Almeida et al., "Scalable Bloom Filters" (Inf. Process. Lett. 101(6),
// 2007): a list of plain Filters ("slices") where adds go to the newest
// slice and a new, larger, tighter slice is chained on when it saturates.
// Slice i holds expected<<i items at rate r0·rⁱ (r = 1/2), so the
// compounded false-positive rate over any number of slices stays below
// r0/(1-r) = 2·r0 — NewScalable sizes r0 at half the requested rate to
// hit the requested bound however far the filter grows.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"shhc/internal/fingerprint"
)

// scalableSlice pairs one fixed filter with the add-count that saturates
// it (Filter does not retain its construction capacity).
type scalableSlice struct {
	f   *Filter
	cap uint64
}

// Scalable is a Bloom filter that grows to hold any number of entries
// while keeping its compounded false-positive rate under the construction
// bound. Add and MayContain are safe for concurrent use with the same
// memory-ordering contract as Filter: a completed Add is never reported
// absent; "Add then MayContain" of the same fingerprint must be
// serialized by the caller (the hybrid node's stripe lock does).
// UnmarshalBinary must not race any other method.
type Scalable struct {
	slices   atomic.Pointer[[]scalableSlice]
	growMu   sync.Mutex // serializes chaining a new slice
	expected uint64
	rate     float64 // requested compound rate (slice 0 gets rate/2)
}

// NewScalable creates a filter sized for expectedItems whose compounded
// false-positive rate stays under fpRate no matter how far past
// expectedItems it grows. It panics on non-positive expectedItems or
// out-of-range fpRate, like New.
func NewScalable(expectedItems int, fpRate float64) *Scalable {
	if expectedItems <= 0 {
		panic("bloom: expectedItems must be positive")
	}
	if fpRate <= 0 || fpRate >= 1 {
		panic("bloom: fpRate must be in (0, 1)")
	}
	s := &Scalable{expected: uint64(expectedItems), rate: fpRate}
	first := []scalableSlice{{f: New(expectedItems, fpRate/2), cap: uint64(expectedItems)}}
	s.slices.Store(&first)
	return s
}

// sliceParams returns the capacity and false-positive rate of slice i:
// capacity doubles per slice (slice count stays logarithmic in total
// adds) while the rate halves (the compound false-positive sum
// converges to the construction bound).
func (s *Scalable) sliceParams(i int) (cap uint64, rate float64) {
	return s.expected << uint(i), s.rate / 2 * math.Pow(0.5, float64(i))
}

// Add inserts the fingerprint. When the newest slice reaches its
// capacity, the next Add chains a fresh slice twice as large at half the
// previous slice's false-positive rate; adds racing the chaining land in
// the previous slice (at most a hair over capacity, which the
// compound-rate bound absorbs).
func (s *Scalable) Add(fp fingerprint.Fingerprint) {
	slices := *s.slices.Load()
	last := &slices[len(slices)-1]
	if uint64(last.f.Len()) >= last.cap {
		s.grow(len(slices))
		slices = *s.slices.Load()
		last = &slices[len(slices)-1]
	}
	last.f.Add(fp)
}

// grow chains a new slice if the list still has fromLen slices (a racing
// grower may already have done it).
func (s *Scalable) grow(fromLen int) {
	s.growMu.Lock()
	defer s.growMu.Unlock()
	cur := *s.slices.Load()
	if len(cur) != fromLen {
		return
	}
	cap, rate := s.sliceParams(len(cur))
	grown := append(append(make([]scalableSlice, 0, len(cur)+1), cur...),
		scalableSlice{f: New(int(cap), rate), cap: cap})
	s.slices.Store(&grown)
}

// MayContain reports whether the fingerprint may have been added. A false
// result is definitive across every slice.
func (s *Scalable) MayContain(fp fingerprint.Fingerprint) bool {
	slices := *s.slices.Load()
	// Newest first: in dedup workloads recent fingerprints are the ones
	// re-queried, and positives short-circuit.
	for i := len(slices) - 1; i >= 0; i-- {
		if slices[i].f.MayContain(fp) {
			return true
		}
	}
	return false
}

// Len returns the number of Add calls across all slices.
func (s *Scalable) Len() int {
	n := 0
	for _, sl := range *s.slices.Load() {
		n += sl.f.Len()
	}
	return n
}

// Slices returns the number of chained slices (1 until the filter first
// outgrows its construction sizing).
func (s *Scalable) Slices() int { return len(*s.slices.Load()) }

// Saturated reports whether the filter has outgrown its construction
// sizing and chained at least one additional slice. It is an advisory
// capacity signal — accuracy is preserved through growth — surfaced in
// node stats so operators notice a table running past its planning
// estimate.
func (s *Scalable) Saturated() bool { return s.Slices() > 1 }

// FillRatio returns how full the newest slice is (adds / capacity); 1.0
// means the next Add chains a new slice.
func (s *Scalable) FillRatio() float64 {
	slices := *s.slices.Load()
	last := slices[len(slices)-1]
	return float64(last.f.Len()) / float64(last.cap)
}

// EstimatedFPRate returns the compounded false-positive probability at the
// current fill: 1 - Π(1 - pᵢ) over the slices' individual estimates. It
// stays under the construction rate even when the filter has grown far
// past its expected size — the observability counterpart of the fix this
// type exists for.
func (s *Scalable) EstimatedFPRate() float64 {
	pass := 1.0
	for _, sl := range *s.slices.Load() {
		pass *= 1 - sl.f.EstimatedFPRate()
	}
	return 1 - pass
}

// SizeBytes returns the total in-memory size of all slices' bit arrays.
func (s *Scalable) SizeBytes() int {
	n := 0
	for _, sl := range *s.slices.Load() {
		n += sl.f.SizeBytes()
	}
	return n
}

// marshal layout: magic(4) version(1) pad(3) expected(8) rate(8)
// sliceCount(4), then per slice: cap(8) len(4) filterBytes.
const (
	scalableMagic   = "SSBF"
	scalableHdrSize = 4 + 1 + 3 + 8 + 8 + 4
)

// MarshalBinary serializes the filter for node checkpointing. Like
// Filter.MarshalBinary it may run concurrently with Add; an Add racing the
// snapshot is wholly or partially included, costing at most an extra SSD
// probe on restore.
func (s *Scalable) MarshalBinary() ([]byte, error) {
	slices := *s.slices.Load()
	var parts [][]byte
	total := scalableHdrSize
	for _, sl := range slices {
		b, err := sl.f.MarshalBinary()
		if err != nil {
			return nil, err
		}
		parts = append(parts, b)
		total += 12 + len(b)
	}
	buf := make([]byte, 0, total)
	var hdr [scalableHdrSize]byte
	copy(hdr[0:4], scalableMagic)
	hdr[4] = 1
	binary.BigEndian.PutUint64(hdr[8:16], s.expected)
	binary.BigEndian.PutUint64(hdr[16:24], math.Float64bits(s.rate))
	binary.BigEndian.PutUint32(hdr[24:28], uint32(len(slices)))
	buf = append(buf, hdr[:]...)
	for i, b := range parts {
		var ph [12]byte
		binary.BigEndian.PutUint64(ph[0:8], slices[i].cap)
		binary.BigEndian.PutUint32(ph[8:12], uint32(len(b)))
		buf = append(buf, ph[:]...)
		buf = append(buf, b...)
	}
	return buf, nil
}

// UnmarshalBinary restores a filter serialized by MarshalBinary. It must
// not race any other method: it swaps the whole slice list.
func (s *Scalable) UnmarshalBinary(data []byte) error {
	if len(data) < scalableHdrSize {
		return errors.New("bloom: unmarshal scalable: truncated header")
	}
	if string(data[0:4]) != scalableMagic {
		return fmt.Errorf("bloom: unmarshal scalable: bad magic %q", data[0:4])
	}
	if data[4] != 1 {
		return fmt.Errorf("bloom: unmarshal scalable: unsupported version %d", data[4])
	}
	expected := binary.BigEndian.Uint64(data[8:16])
	rate := math.Float64frombits(binary.BigEndian.Uint64(data[16:24]))
	count := binary.BigEndian.Uint32(data[24:28])
	if expected == 0 || rate <= 0 || rate >= 1 || count == 0 || count > 64 {
		return fmt.Errorf("bloom: unmarshal scalable: invalid header (expected=%d rate=%g slices=%d)", expected, rate, count)
	}
	restored := make([]scalableSlice, 0, count)
	off := scalableHdrSize
	for i := uint32(0); i < count; i++ {
		if len(data) < off+12 {
			return errors.New("bloom: unmarshal scalable: truncated slice header")
		}
		cap := binary.BigEndian.Uint64(data[off : off+8])
		n := int(binary.BigEndian.Uint32(data[off+8 : off+12]))
		off += 12
		if cap == 0 || n < 0 || len(data) < off+n {
			return fmt.Errorf("bloom: unmarshal scalable: slice %d truncated", i)
		}
		f := &Filter{}
		if err := f.UnmarshalBinary(data[off : off+n]); err != nil {
			return fmt.Errorf("bloom: unmarshal scalable: slice %d: %w", i, err)
		}
		off += n
		//lint:ignore atomicmix restored is private until the Store below publishes it; no reader can hold it yet.
		restored = append(restored, scalableSlice{f: f, cap: cap})
	}
	if off != len(data) {
		return fmt.Errorf("bloom: unmarshal scalable: %d trailing bytes", len(data)-off)
	}
	s.expected, s.rate = expected, rate
	s.slices.Store(&restored)
	return nil
}
