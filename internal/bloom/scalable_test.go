package bloom

import (
	"sync"
	"testing"

	"shhc/internal/fingerprint"
)

func TestScalableNoFalseNegativesThroughGrowth(t *testing.T) {
	s := NewScalable(100, 0.01)
	const n = 3000 // 30x the construction sizing
	for i := uint64(0); i < n; i++ {
		s.Add(fingerprint.FromUint64(i))
	}
	for i := uint64(0); i < n; i++ {
		if !s.MayContain(fingerprint.FromUint64(i)) {
			t.Fatalf("false negative for %d after growth", i)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	if s.Slices() < 3 {
		t.Fatalf("Slices = %d after 30x overfill, want several", s.Slices())
	}
	if !s.Saturated() {
		t.Fatal("Saturated = false after outgrowing construction sizing")
	}
}

func TestScalableFPRateStaysBoundedPastCapacity(t *testing.T) {
	const (
		expected = 1000
		rate     = 0.01
		overfill = 8 // the fixed-capacity failure mode this type fixes
		probes   = 20000
	)
	fixed := New(expected, rate)
	scalable := NewScalable(expected, rate)
	for i := uint64(0); i < expected*overfill; i++ {
		fp := fingerprint.FromUint64(i)
		fixed.Add(fp)
		scalable.Add(fp)
	}
	countFPs := func(may func(fingerprint.Fingerprint) bool) int {
		fps := 0
		for i := uint64(0); i < probes; i++ {
			if may(fingerprint.FromUint64(1 << 40 * (i + 1))) {
				fps++
			}
		}
		return fps
	}
	fixedFPs := countFPs(fixed.MayContain)
	scalableFPs := countFPs(scalable.MayContain)
	// The fixed filter is hopeless at 8x fill (~0.6 observed FP rate); the
	// scalable one must stay near its construction bound. 3x the bound
	// gives the statistical test slack without letting a broken compound
	// rate pass.
	if got := float64(scalableFPs) / probes; got > 3*rate {
		t.Fatalf("scalable FP rate %.4f at %dx fill, want <= %.4f", got, overfill, 3*rate)
	}
	if fixedFPs < scalableFPs*10 {
		t.Fatalf("fixed filter FP count %d not clearly degraded vs scalable %d; test is not probing saturation", fixedFPs, scalableFPs)
	}
	if est := scalable.EstimatedFPRate(); est > rate {
		t.Fatalf("EstimatedFPRate = %.4f above construction bound %.4f", est, rate)
	}
	if est := scalable.EstimatedFPRate(); est <= 0 {
		t.Fatalf("EstimatedFPRate = %g for a loaded filter", est)
	}
}

func TestScalableFreshFilterStats(t *testing.T) {
	s := NewScalable(100, 0.01)
	if s.Saturated() {
		t.Fatal("fresh filter reports saturated")
	}
	if s.Slices() != 1 {
		t.Fatalf("Slices = %d, want 1", s.Slices())
	}
	if got := s.EstimatedFPRate(); got != 0 {
		t.Fatalf("EstimatedFPRate = %g for empty filter, want 0", got)
	}
	if got := s.FillRatio(); got != 0 {
		t.Fatalf("FillRatio = %g for empty filter, want 0", got)
	}
	s.Add(fingerprint.FromUint64(1))
	if got := s.FillRatio(); got <= 0 || got > 1 {
		t.Fatalf("FillRatio = %g after one add", got)
	}
	if s.SizeBytes() <= 0 {
		t.Fatal("SizeBytes not positive")
	}
}

func TestScalableMarshalRoundTrip(t *testing.T) {
	s := NewScalable(50, 0.02)
	const n = 400
	for i := uint64(0); i < n; i++ {
		s.Add(fingerprint.FromUint64(i))
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	r := &Scalable{}
	if err := r.UnmarshalBinary(data); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if r.Len() != s.Len() || r.Slices() != s.Slices() {
		t.Fatalf("restored Len/Slices = %d/%d, want %d/%d", r.Len(), r.Slices(), s.Len(), s.Slices())
	}
	for i := uint64(0); i < n; i++ {
		if !r.MayContain(fingerprint.FromUint64(i)) {
			t.Fatalf("restored filter lost %d", i)
		}
	}
	// The restored filter must keep growing correctly.
	for i := uint64(n); i < 2*n; i++ {
		r.Add(fingerprint.FromUint64(i))
	}
	for i := uint64(0); i < 2*n; i++ {
		if !r.MayContain(fingerprint.FromUint64(i)) {
			t.Fatalf("restored filter lost %d after further growth", i)
		}
	}

	if err := r.UnmarshalBinary(data[:scalableHdrSize-1]); err == nil {
		t.Fatal("truncated header accepted")
	}
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if err := r.UnmarshalBinary(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	if err := r.UnmarshalBinary(append(append([]byte(nil), data...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// TestScalableConcurrentAdds races adds across the growth boundary; run
// under -race this checks the copy-on-write slice publication, and the
// post-condition checks no add was lost.
func TestScalableConcurrentAdds(t *testing.T) {
	s := NewScalable(64, 0.01)
	const (
		workers = 8
		perW    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w * perW)
			for i := uint64(0); i < perW; i++ {
				s.Add(fingerprint.FromUint64(base + i))
				if i%16 == 0 {
					s.MayContain(fingerprint.FromUint64(base + i/2))
					s.EstimatedFPRate()
				}
			}
		}(w)
	}
	wg.Wait()
	for i := uint64(0); i < workers*perW; i++ {
		if !s.MayContain(fingerprint.FromUint64(i)) {
			t.Fatalf("false negative for %d after concurrent adds", i)
		}
	}
	if s.Len() != workers*perW {
		t.Fatalf("Len = %d, want %d", s.Len(), workers*perW)
	}
}
