package directio

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openTemp(t *testing.T, opts Options) *File {
	t.Helper()
	path := filepath.Join(t.TempDir(), "blob")
	f, err := Open(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestDirectIORoundTrip writes and reads across the aligned fast path and
// both unaligned RMW shapes (head fragment, tail fragment, sub-block span).
func TestDirectIORoundTrip(t *testing.T) {
	for _, disable := range []bool{false, true} {
		f := openTemp(t, Options{Disable: disable})
		if disable && f.Direct() {
			t.Fatal("Disable did not force buffered I/O")
		}
		t.Logf("disable=%v direct=%v", disable, f.Direct())

		if err := f.Truncate(4 * BlockSize); err != nil {
			t.Fatal(err)
		}
		// Aligned whole blocks.
		page := bytes.Repeat([]byte{0xAB}, BlockSize)
		if n, err := f.WriteAt(page, BlockSize); err != nil || n != BlockSize {
			t.Fatalf("aligned WriteAt = %d, %v", n, err)
		}
		// Unaligned small writes inside one block (the header-slot shape).
		hdr := bytes.Repeat([]byte{0x11}, 49)
		if n, err := f.WriteAt(hdr, 0); err != nil || n != len(hdr) {
			t.Fatalf("header WriteAt = %d, %v", n, err)
		}
		hdr2 := bytes.Repeat([]byte{0x22}, 49)
		if n, err := f.WriteAt(hdr2, 512); err != nil || n != len(hdr2) {
			t.Fatalf("header slot 2 WriteAt = %d, %v", n, err)
		}
		// A write spanning a block boundary.
		span := bytes.Repeat([]byte{0x33}, BlockSize)
		if n, err := f.WriteAt(span, 2*BlockSize+100); err != nil || n != len(span) {
			t.Fatalf("spanning WriteAt = %d, %v", n, err)
		}

		check := func(off int64, want []byte) {
			t.Helper()
			got := make([]byte, len(want))
			if n, err := f.ReadAt(got, off); err != nil || n != len(want) {
				t.Fatalf("ReadAt(%d) = %d, %v", off, n, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("ReadAt(%d) content mismatch", off)
			}
		}
		check(BlockSize, page)
		check(0, hdr)
		check(512, hdr2)
		check(2*BlockSize+100, span)
		// The first header write must not have clobbered the second slot's
		// block-mates, and vice versa.
		zeros := make([]byte, 512-49)
		check(49, zeros)

		if err := f.Sync(); err != nil {
			t.Fatalf("Sync: %v", err)
		}
	}
}

// TestDirectIOReadAtEOF pins os.File-compatible short-read semantics: a
// read crossing EOF returns the available bytes with io.EOF, a read fully
// past EOF returns 0, io.EOF.
func TestDirectIOReadAtEOF(t *testing.T) {
	f := openTemp(t, Options{})
	if err := f.Truncate(BlockSize); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2*BlockSize)
	n, err := f.ReadAt(buf, 0)
	if n != BlockSize || !errors.Is(err, io.EOF) {
		t.Fatalf("crossing read = %d, %v; want %d, EOF", n, err, BlockSize)
	}
	n, err = f.ReadAt(buf[:10], 3*BlockSize)
	if n != 0 || !errors.Is(err, io.EOF) {
		t.Fatalf("past-EOF read = %d, %v; want 0, EOF", n, err)
	}
	// A read exactly filling the file must NOT report EOF (padding-only EOF
	// is swallowed).
	n, err = f.ReadAt(buf[:BlockSize], 0)
	if n != BlockSize || err != nil {
		t.Fatalf("exact read = %d, %v; want %d, nil", n, err, BlockSize)
	}
}

// TestDirectIOFallbackTmpfs proves the graceful-degradation contract on a
// filesystem that rejects O_DIRECT: /dev/shm (tmpfs on Linux). Wherever it
// runs, Open must succeed and serve correct I/O; tmpfs typically forces
// Direct() == false, but the test holds either way — that is the point of
// the fallback.
func TestDirectIOFallbackTmpfs(t *testing.T) {
	base := "/dev/shm"
	if fi, err := os.Stat(base); err != nil || !fi.IsDir() {
		t.Skip("/dev/shm not available")
	}
	dir, err := os.MkdirTemp(base, "directio-test-*")
	if err != nil {
		t.Skipf("cannot write %s: %v", base, err)
	}
	defer os.RemoveAll(dir)
	f, err := Open(filepath.Join(dir, "blob"), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644, Options{})
	if err != nil {
		t.Fatalf("Open on tmpfs: %v", err)
	}
	defer f.Close()
	t.Logf("tmpfs direct=%v", f.Direct())
	want := bytes.Repeat([]byte{0x5A}, BlockSize+77)
	if _, err := f.WriteAt(want, 33); err != nil {
		t.Fatalf("WriteAt on tmpfs: %v", err)
	}
	got := make([]byte, len(want))
	if _, err := f.ReadAt(got, 33); err != nil {
		t.Fatalf("ReadAt on tmpfs: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("tmpfs round-trip mismatch")
	}
}

// TestDirectIOConcurrent hammers disjoint aligned pages from many
// goroutines through a small queue depth, exercising the semaphore and the
// bounce-block pool.
func TestDirectIOConcurrent(t *testing.T) {
	f := openTemp(t, Options{QueueDepth: 4})
	const pages = 64
	if err := f.Truncate(pages * BlockSize); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, pages)
	for i := 0; i < pages; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			page := bytes.Repeat([]byte{byte(i)}, BlockSize)
			if _, err := f.WriteAt(page, int64(i)*BlockSize); err != nil {
				errs <- err
				return
			}
			got := make([]byte, BlockSize)
			if _, err := f.ReadAt(got, int64(i)*BlockSize); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, page) {
				errs <- errors.New("page content mismatch")
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
