//go:build linux

package directio

import (
	"os"
	"syscall"
)

// trySetDirect enables O_DIRECT on an already-open fd via fcntl(F_SETFL).
// Doing it post-open (rather than passing O_DIRECT to open) preserves
// O_EXCL creation semantics: an O_DIRECT open on an unsupporting
// filesystem can create the file and then fail, poisoning a retry.
// Returns false when the filesystem refuses (tmpfs and friends).
func trySetDirect(f *os.File) bool {
	ok := false
	_ = fcntlFlags(f, func(flags uintptr) (uintptr, bool) {
		return flags | syscall.O_DIRECT, true
	}, &ok)
	return ok
}

// clearDirectFlag removes O_DIRECT from the fd after a transfer-time
// EINVAL, so subsequent buffered I/O is not itself rejected.
func clearDirectFlag(f *os.File) {
	var ok bool
	_ = fcntlFlags(f, func(flags uintptr) (uintptr, bool) {
		return flags &^ syscall.O_DIRECT, true
	}, &ok)
}

// fcntlFlags runs F_GETFL, maps the flags through mod, and applies the
// result with F_SETFL, reporting success through *ok.
func fcntlFlags(f *os.File, mod func(uintptr) (uintptr, bool), ok *bool) error {
	rc, err := f.SyscallConn()
	if err != nil {
		return err
	}
	return rc.Control(func(fd uintptr) {
		flags, _, errno := syscall.Syscall(syscall.SYS_FCNTL, fd, syscall.F_GETFL, 0)
		if errno != 0 {
			return
		}
		next, apply := mod(flags)
		if !apply {
			return
		}
		if _, _, errno := syscall.Syscall(syscall.SYS_FCNTL, fd, syscall.F_SETFL, next); errno == 0 {
			*ok = true
		}
	})
}
