// Package directio is a direct-I/O file backend for the SSD hash table:
// an os.File wrapper satisfying hashdb.File whose reads and writes bypass
// the OS page cache via O_DIRECT, the configuration the paper measures
// (the SSD's own latency, not the kernel's RAM).
//
// O_DIRECT imposes alignment rules: file offset, transfer length, and the
// user memory buffer must all be multiples of the device's logical block
// size. The wrapper hides them behind the ordinary ReaderAt/WriterAt
// contract by bouncing transfers through pooled page-aligned blocks:
//
//   - Aligned page I/O (the hash table's hot path — 4 KiB pages at 4 KiB
//     offsets) copies through one aligned block per page.
//   - Unaligned I/O (the 49-byte header slots at offsets 0 and 512) becomes
//     a read-modify-write of the containing aligned block. Concurrent RMW
//     of the same block must be serialized by the caller; hashdb already
//     does (header writes hold allocMu or run quiesced, and pages never
//     share a block).
//
// Not every filesystem supports O_DIRECT — tmpfs, some network and overlay
// mounts refuse it — so Open degrades gracefully: the file is opened
// buffered first (preserving O_EXCL creation semantics, which an O_DIRECT
// open can violate by creating the file and then failing), then O_DIRECT is
// enabled with fcntl(F_SETFL). If the filesystem refuses, or a later
// transfer fails with EINVAL, the file falls back to buffered I/O and
// stays there — correct everywhere, direct where possible, so the same
// binary runs on a raw SSD and in CI.
package directio

import (
	"errors"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// BlockSize is the alignment unit for direct transfers: offsets, lengths,
// and buffer addresses are rounded to it. 4 KiB satisfies both 512e and
// 4Kn devices and equals the hash table's page size, so page I/O maps to
// exactly one aligned block.
const BlockSize = 4096

// DefaultQueueDepth bounds concurrent direct transfers when Options leaves
// it zero — deep enough to keep an NVMe queue busy, shallow enough not to
// starve the rest of the process of file descriptors' worth of inflight I/O.
const DefaultQueueDepth = 32

// Options configures Open.
type Options struct {
	// QueueDepth caps concurrent direct transfers (a semaphore around the
	// pread/pwrite). 0 means DefaultQueueDepth. Buffered fallback I/O is
	// not throttled — the page cache absorbs it.
	QueueDepth int
	// Disable forces buffered I/O even where O_DIRECT would work: the
	// ablation knob for benchmarks comparing the two.
	Disable bool
}

// File is an os.File whose I/O goes through O_DIRECT when the filesystem
// supports it and plain buffered I/O when it does not. It satisfies
// hashdb.File.
type File struct {
	f      *os.File
	direct atomic.Bool
	sem    chan struct{}
}

// Open opens (or creates, per flag) path for direct I/O. The flag and perm
// arguments are os.OpenFile's. The returned file is always usable; Direct
// reports whether O_DIRECT actually engaged.
func Open(path string, flag int, perm os.FileMode, opts Options) (*File, error) {
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	d := &File{f: f, sem: make(chan struct{}, depth)}
	if !opts.Disable && trySetDirect(f) {
		d.direct.Store(true)
	}
	return d, nil
}

// Direct reports whether transfers currently bypass the page cache. It can
// transition true→false (a filesystem that accepted F_SETFL but rejects
// the first transfer), never false→true.
func (d *File) Direct() bool { return d.direct.Load() }

// disableDirect drops to buffered I/O after the filesystem rejected a
// direct transfer with EINVAL.
func (d *File) disableDirect() {
	d.direct.Store(false)
	clearDirectFlag(d.f)
}

// blockPool recycles page-aligned bounce blocks. It holds *[]byte — a
// pointer fits the interface value without the slice-header boxing
// allocation a pool of bare slices pays on every Put.
var blockPool = sync.Pool{New: func() any { return newAlignedBlock() }}

// newAlignedBlock allocates a BlockSize buffer whose base address is
// BlockSize-aligned, as O_DIRECT requires of user memory. Go's GC does not
// move heap objects, so the alignment is stable for the buffer's lifetime.
func newAlignedBlock() *[]byte {
	raw := make([]byte, 2*BlockSize)
	pad := 0
	if r := int(uintptr(unsafe.Pointer(unsafe.SliceData(raw))) & (BlockSize - 1)); r != 0 {
		pad = BlockSize - r
	}
	b := raw[pad : pad+BlockSize : pad+BlockSize]
	return &b
}

// ReadAt implements io.ReaderAt. Like os.File it returns io.EOF with a
// short count when the file ends inside the requested range.
func (d *File) ReadAt(p []byte, off int64) (int, error) {
	if !d.direct.Load() {
		return d.f.ReadAt(p, off)
	}
	d.sem <- struct{}{}
	defer func() { <-d.sem }()
	bp := blockPool.Get().(*[]byte)
	defer blockPool.Put(bp)
	blk := *bp
	n := 0
	end := off + int64(len(p))
	for base := off &^ (BlockSize - 1); base < end; base += BlockSize {
		m, err := d.f.ReadAt(blk, base)
		if errors.Is(err, syscall.EINVAL) {
			// The filesystem took F_SETFL but refuses direct transfers
			// (some network and FUSE mounts). Fall back for good and
			// restart the whole read buffered.
			d.disableDirect()
			return d.f.ReadAt(p, off)
		}
		lo, hi := max(off, base), min(end, base+int64(m))
		if hi > lo {
			copy(p[lo-off:hi-off], blk[lo-base:hi-base])
			n = int(hi - off)
		}
		if err != nil {
			if errors.Is(err, io.EOF) && n == len(p) {
				// The range was satisfied; EOF was only in block padding.
				return n, nil
			}
			return n, err
		}
	}
	return n, nil
}

// WriteAt implements io.WriterAt. A write not aligned to BlockSize becomes
// a read-modify-write of the containing blocks; callers must serialize
// concurrent RMW of one block (aligned page writes never overlap).
func (d *File) WriteAt(p []byte, off int64) (int, error) {
	if !d.direct.Load() {
		return d.f.WriteAt(p, off)
	}
	d.sem <- struct{}{}
	defer func() { <-d.sem }()
	bp := blockPool.Get().(*[]byte)
	defer blockPool.Put(bp)
	blk := *bp
	n := 0
	end := off + int64(len(p))
	for base := off &^ (BlockSize - 1); base < end; base += BlockSize {
		lo, hi := max(off, base), min(end, base+BlockSize)
		if hi-lo < BlockSize {
			// Partial block: read what is there (EOF zero-fills) and merge.
			m, err := d.f.ReadAt(blk, base)
			if errors.Is(err, syscall.EINVAL) {
				d.disableDirect()
				return d.f.WriteAt(p, off)
			}
			if err != nil && !errors.Is(err, io.EOF) {
				return n, err
			}
			clear(blk[m:])
		}
		copy(blk[lo-base:hi-base], p[lo-off:hi-off])
		if _, err := d.f.WriteAt(blk, base); err != nil {
			if errors.Is(err, syscall.EINVAL) {
				d.disableDirect()
				return d.f.WriteAt(p, off)
			}
			return n, err
		}
		n = int(hi - off)
	}
	return n, nil
}

// Truncate resizes the file. Sizes need not be block-aligned, but direct
// reads of a final partial block then see a short read, as on os.File.
func (d *File) Truncate(size int64) error { return d.f.Truncate(size) }

// Stat delegates to the underlying file.
func (d *File) Stat() (os.FileInfo, error) { return d.f.Stat() }

// Sync flushes device caches. Under O_DIRECT data already bypassed the
// page cache, but fsync is still what flushes the drive's volatile write
// cache and the metadata (size) updates, so it is not a no-op.
func (d *File) Sync() error { return d.f.Sync() }

// Close closes the underlying file.
func (d *File) Close() error { return d.f.Close() }
