//go:build !linux

package directio

import "os"

// trySetDirect reports false on platforms without O_DIRECT (darwin uses
// F_NOCACHE, windows FILE_FLAG_NO_BUFFERING — neither is wired up); the
// backend runs buffered, which is always correct.
func trySetDirect(*os.File) bool { return false }

func clearDirectFlag(*os.File) {}
