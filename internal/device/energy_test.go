package device

import (
	"math"
	"testing"
)

func TestEnergyComputation(t *testing.T) {
	e := EnergyModel{ReadJ: 2, WriteJ: 3, PerByteJ: 0.5}
	s := Stats{Reads: 10, Writes: 4, ReadBytes: 8, WriteBytes: 2}
	want := 10.0*2 + 4*3 + 10*0.5
	if got := e.Energy(s); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Energy = %v, want %v", got, want)
	}
}

func TestEnergyByName(t *testing.T) {
	for _, name := range []string{"ssd", "hdd", "ram", "null", ""} {
		if _, err := EnergyByName(name); err != nil {
			t.Fatalf("EnergyByName(%q): %v", name, err)
		}
	}
	if _, err := EnergyByName("abacus"); err == nil {
		t.Fatal("unknown energy model accepted")
	}
}

func TestEnergyOrdering(t *testing.T) {
	// The future-work claim worth checking: per random read,
	// HDD >> SSD >> RAM.
	if !(HDDEnergy.ReadJ > 100*SSDEnergy.ReadJ) {
		t.Fatal("HDD read energy must dwarf SSD")
	}
	if !(SSDEnergy.ReadJ > 100*RAMEnergy.ReadJ) {
		t.Fatal("SSD read energy must dwarf RAM")
	}
}

func TestEnergyForDevice(t *testing.T) {
	d := New(SSD, Account)
	d.Read(4096)
	d.Write(4096)
	got := EnergyFor(d)
	want := SSDEnergy.ReadJ + SSDEnergy.WriteJ + 8192*SSDEnergy.PerByteJ
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("EnergyFor = %v, want %v", got, want)
	}

	// Unknown model names charge zero rather than erroring.
	weird := New(Model{Name: "weird"}, Account)
	weird.Read(10)
	if EnergyFor(weird) != 0 {
		t.Fatal("unknown model should charge no energy")
	}
}
