// Package device models the latency of the storage hardware SHHC runs on.
//
// The paper evaluates on machines with a SATA II SSD holding the hash table
// and contrasts against hard-disk indexes whose seek time dominates random
// lookups. This environment has neither device, so every store charges its
// random I/Os to a Model that reproduces the device's latency profile —
// either by sleeping (live cluster benchmarks) or by pure accounting
// (discrete-event simulation). Only latency *shape* matters for the paper's
// claims: SSD random reads are ~100x faster than HDD seeks, and RAM is ~100x
// faster again.
package device

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Model describes a storage device's latency profile.
type Model struct {
	// Name identifies the profile in logs and benchmark output.
	Name string
	// ReadBase is the fixed cost of one random read (seek + command).
	ReadBase time.Duration
	// WriteBase is the fixed cost of one random write.
	WriteBase time.Duration
	// PerByte is the transfer cost per byte moved (1 / bandwidth).
	PerByte time.Duration
}

// Predefined models. Values follow the devices in the paper's testbed
// (SATA II SSD, 7200rpm HDD baseline, DRAM) at the granularity the
// evaluation needs: relative order-of-magnitude gaps.
var (
	// SSD models a SATA II flash drive: ~60us random 4K read, writes
	// roughly 3x slower, ~250 MB/s transfer.
	SSD = Model{Name: "ssd", ReadBase: 60 * time.Microsecond, WriteBase: 180 * time.Microsecond, PerByte: 4 * time.Nanosecond}
	// HDD models a 7200rpm SATA disk: ~6ms seek+rotate per random I/O,
	// ~100 MB/s transfer.
	HDD = Model{Name: "hdd", ReadBase: 6 * time.Millisecond, WriteBase: 6 * time.Millisecond, PerByte: 10 * time.Nanosecond}
	// RAM models DRAM access as seen by a hash-table probe.
	RAM = Model{Name: "ram", ReadBase: 200 * time.Nanosecond, WriteBase: 200 * time.Nanosecond, PerByte: 0}
	// Null charges nothing; used when real hardware timing is wanted.
	Null = Model{Name: "null"}
)

// ReadLatency returns the modeled duration of one random read of n bytes.
func (m Model) ReadLatency(n int) time.Duration {
	return m.ReadBase + time.Duration(n)*m.PerByte
}

// WriteLatency returns the modeled duration of one random write of n bytes.
func (m Model) WriteLatency(n int) time.Duration {
	return m.WriteBase + time.Duration(n)*m.PerByte
}

// Mode selects how a Device realizes modeled latency.
type Mode int

const (
	// Account only accumulates modeled time; callers never block. The
	// discrete-event simulator and unit tests use this mode.
	Account Mode = iota + 1
	// Sleep blocks the calling goroutine for the modeled duration, so a
	// live cluster behaves as if the device were attached.
	Sleep
)

// Device charges I/O operations against a Model and keeps usage statistics.
// A Device is safe for concurrent use; in Sleep mode concurrent operations
// overlap, mimicking a device with internal parallelism (NCQ / flash
// channels).
type Device struct {
	model Model
	mode  Mode

	reads      atomic.Int64
	writes     atomic.Int64
	readBytes  atomic.Int64
	writeBytes atomic.Int64
	busy       atomic.Int64 // nanoseconds of modeled device time

	mu    sync.Mutex
	nowNS int64 // virtual clock for Account mode, monotone
}

// New creates a Device with the given latency model and mode.
func New(model Model, mode Mode) *Device {
	if mode != Account && mode != Sleep {
		mode = Account
	}
	return &Device{model: model, mode: mode}
}

// Model returns the device's latency model.
func (d *Device) Model() Model { return d.model }

// Read charges one random read of n bytes and returns the modeled latency.
func (d *Device) Read(n int) time.Duration {
	lat := d.model.ReadLatency(n)
	d.reads.Add(1)
	d.readBytes.Add(int64(n))
	d.charge(lat)
	return lat
}

// Write charges one random write of n bytes and returns the modeled latency.
func (d *Device) Write(n int) time.Duration {
	lat := d.model.WriteLatency(n)
	d.writes.Add(1)
	d.writeBytes.Add(int64(n))
	d.charge(lat)
	return lat
}

func (d *Device) charge(lat time.Duration) {
	d.busy.Add(int64(lat))
	if d.mode == Sleep && lat > 0 {
		time.Sleep(lat)
	}
}

// Stats is a snapshot of a Device's usage counters.
type Stats struct {
	Reads      int64
	Writes     int64
	ReadBytes  int64
	WriteBytes int64
	// Busy is the total modeled device time across all operations.
	Busy time.Duration
}

// Stats returns a snapshot of the device's counters.
func (d *Device) Stats() Stats {
	return Stats{
		Reads:      d.reads.Load(),
		Writes:     d.writes.Load(),
		ReadBytes:  d.readBytes.Load(),
		WriteBytes: d.writeBytes.Load(),
		Busy:       time.Duration(d.busy.Load()),
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d readB=%d writeB=%d busy=%v",
		s.Reads, s.Writes, s.ReadBytes, s.WriteBytes, s.Busy)
}

// ModelByName resolves a profile name ("ssd", "hdd", "ram", "null") to its
// Model, for command-line flags.
func ModelByName(name string) (Model, error) {
	switch name {
	case "ssd":
		return SSD, nil
	case "hdd":
		return HDD, nil
	case "ram":
		return RAM, nil
	case "null", "":
		return Null, nil
	}
	return Model{}, fmt.Errorf("device: unknown model %q (want ssd|hdd|ram|null)", name)
}
