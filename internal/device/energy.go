package device

import "fmt"

// EnergyModel estimates the electrical energy of device operations,
// supporting the paper's future-work item on "energy efficiency of hash
// operations in cloud deduplication storage systems". Figures are
// order-of-magnitude estimates for commodity parts: what matters for the
// comparison is that a disk seek costs ~1000x a flash read, which costs
// ~1000x a DRAM access.
type EnergyModel struct {
	// ReadJ / WriteJ are joules per random operation.
	ReadJ, WriteJ float64
	// PerByteJ is joules per byte transferred.
	PerByteJ float64
}

// Energy profiles matching the latency Models.
var (
	// SSDEnergy: ~3 W at ~75 kIOPS -> ~40 uJ per read; writes ~3x.
	SSDEnergy = EnergyModel{ReadJ: 40e-6, WriteJ: 120e-6, PerByteJ: 1e-9}
	// HDDEnergy: ~8 W at ~150 IOPS -> ~53 mJ per random I/O.
	HDDEnergy = EnergyModel{ReadJ: 53e-3, WriteJ: 53e-3, PerByteJ: 5e-9}
	// RAMEnergy: tens of nanojoules per access.
	RAMEnergy = EnergyModel{ReadJ: 20e-9, WriteJ: 20e-9}
	// NullEnergy charges nothing.
	NullEnergy = EnergyModel{}
)

// EnergyByName resolves the energy profile paired with a latency model
// name ("ssd", "hdd", "ram", "null").
func EnergyByName(name string) (EnergyModel, error) {
	switch name {
	case "ssd":
		return SSDEnergy, nil
	case "hdd":
		return HDDEnergy, nil
	case "ram":
		return RAMEnergy, nil
	case "null", "":
		return NullEnergy, nil
	}
	return EnergyModel{}, fmt.Errorf("device: unknown energy model %q", name)
}

// Energy computes the active energy, in joules, a device with this profile
// spent on the given operation counts.
func (e EnergyModel) Energy(s Stats) float64 {
	return float64(s.Reads)*e.ReadJ +
		float64(s.Writes)*e.WriteJ +
		float64(s.ReadBytes+s.WriteBytes)*e.PerByteJ
}

// EnergyFor pairs a latency model with its default energy profile and
// computes the device's active energy in joules.
func EnergyFor(d *Device) float64 {
	e, err := EnergyByName(d.Model().Name)
	if err != nil {
		e = NullEnergy
	}
	return e.Energy(d.Stats())
}
