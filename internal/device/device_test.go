package device

import (
	"sync"
	"testing"
	"time"
)

func TestModelLatencyComposition(t *testing.T) {
	m := Model{ReadBase: 100 * time.Microsecond, WriteBase: 200 * time.Microsecond, PerByte: 2 * time.Nanosecond}
	if got, want := m.ReadLatency(1000), 102*time.Microsecond; got != want {
		t.Fatalf("ReadLatency = %v, want %v", got, want)
	}
	if got, want := m.WriteLatency(500), 201*time.Microsecond; got != want {
		t.Fatalf("WriteLatency = %v, want %v", got, want)
	}
}

func TestDeviceAccounting(t *testing.T) {
	d := New(SSD, Account)
	d.Read(4096)
	d.Read(4096)
	d.Write(4096)

	s := d.Stats()
	if s.Reads != 2 || s.Writes != 1 {
		t.Fatalf("ops = %d reads / %d writes, want 2/1", s.Reads, s.Writes)
	}
	if s.ReadBytes != 8192 || s.WriteBytes != 4096 {
		t.Fatalf("bytes = %d/%d, want 8192/4096", s.ReadBytes, s.WriteBytes)
	}
	want := 2*SSD.ReadLatency(4096) + SSD.WriteLatency(4096)
	if s.Busy != want {
		t.Fatalf("busy = %v, want %v", s.Busy, want)
	}
}

func TestAccountModeDoesNotBlock(t *testing.T) {
	d := New(HDD, Account) // 6ms per op would be very visible if slept
	start := time.Now()
	for i := 0; i < 100; i++ {
		d.Read(4096)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("Account mode took %v; it must not sleep", elapsed)
	}
	if got := d.Stats().Busy; got < 600*time.Millisecond {
		t.Fatalf("busy = %v, want >= 600ms of modeled time", got)
	}
}

func TestSleepModeBlocks(t *testing.T) {
	m := Model{Name: "slow", ReadBase: 10 * time.Millisecond}
	d := New(m, Sleep)
	start := time.Now()
	d.Read(0)
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("Sleep mode returned in %v, want >= 10ms", elapsed)
	}
}

func TestNullChargesNothing(t *testing.T) {
	d := New(Null, Sleep)
	if lat := d.Read(1 << 20); lat != 0 {
		t.Fatalf("null read latency = %v, want 0", lat)
	}
	if lat := d.Write(1 << 20); lat != 0 {
		t.Fatalf("null write latency = %v, want 0", lat)
	}
}

func TestConcurrentAccounting(t *testing.T) {
	d := New(SSD, Account)
	var wg sync.WaitGroup
	const goroutines, each = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				d.Read(4096)
			}
		}()
	}
	wg.Wait()
	if got, want := d.Stats().Reads, int64(goroutines*each); got != want {
		t.Fatalf("reads = %d, want %d", got, want)
	}
}

func TestModelByName(t *testing.T) {
	tests := []struct {
		give    string
		want    string
		wantErr bool
	}{
		{give: "ssd", want: "ssd"},
		{give: "hdd", want: "hdd"},
		{give: "ram", want: "ram"},
		{give: "null", want: "null"},
		{give: "", want: "null"},
		{give: "tape", wantErr: true},
	}
	for _, tt := range tests {
		m, err := ModelByName(tt.give)
		if tt.wantErr {
			if err == nil {
				t.Fatalf("ModelByName(%q) succeeded, want error", tt.give)
			}
			continue
		}
		if err != nil {
			t.Fatalf("ModelByName(%q): %v", tt.give, err)
		}
		if m.Name != tt.want {
			t.Fatalf("ModelByName(%q).Name = %q, want %q", tt.give, m.Name, tt.want)
		}
	}
}

func TestRelativeDeviceOrdering(t *testing.T) {
	// The paper's argument depends on RAM << SSD << HDD for random reads.
	if !(RAM.ReadLatency(4096) < SSD.ReadLatency(4096)) {
		t.Fatal("RAM must be faster than SSD")
	}
	if !(SSD.ReadLatency(4096)*10 < HDD.ReadLatency(4096)) {
		t.Fatal("SSD must be at least 10x faster than HDD for random reads")
	}
}
