// Package trace generates and analyzes fingerprint workloads matching the
// paper's Table I.
//
// The paper evaluates SHHC with fingerprint traces of four real-world
// workloads (three FIU traces and a six-month Time Machine backup),
// characterized by three statistics: total fingerprints, % redundant
// (fraction of lookups that hit an already-stored fingerprint), and
// "distance" (the average number of positions between occurrences of the
// same fingerprint, i.e. mean reuse distance — shorter means more spatial
// locality). Those traces are not distributable, so this package generates
// synthetic streams that match all three statistics, and provides the
// analyzer that recomputes them from any stream so the match is verifiable.
//
// Generation model: the stream is produced left to right. Most positions
// emit fresh unique fingerprints. With the configured probability a
// *duplicate run* starts: a contiguous range of fingerprints from `d`
// positions back is replayed, where d is exponentially distributed with the
// target mean distance. Runs model the paper's observation that backup
// streams exhibit chunk locality — duplicates arrive in sequences, which is
// exactly what batched queries exploit.
package trace

import (
	"fmt"
	"math"
	"math/rand"

	"shhc/internal/fingerprint"
)

// Default chunk sizes from the paper: "8KB chunk size for the Time machine
// and 4KB for the others".
const (
	ChunkSize4K = 4096
	ChunkSize8K = 8192
)

// Spec parameterizes a synthetic workload.
type Spec struct {
	// Name labels the workload in reports.
	Name string
	// Fingerprints is the stream length (Table I "Fingerprints").
	Fingerprints int
	// PctRedundant is the duplicate fraction in [0,1) (Table I "% Redundant").
	PctRedundant float64
	// Distance is the target mean reuse distance (Table I "Distance").
	Distance int
	// ChunkSize is the chunk size in bytes the fingerprints notionally
	// describe; throughput math uses it.
	ChunkSize int
	// MeanRunLength is the mean length of duplicate runs (chunk
	// locality). Defaults to 32.
	MeanRunLength int
	// Seed makes the stream deterministic.
	Seed int64
}

// Paper workloads, exactly as reported in Table I.
var (
	// WebServer is the FIU web server trace: 2,094,832 fingerprints,
	// 18% redundant, mean distance 10,781.
	WebServer = Spec{Name: "Web Server", Fingerprints: 2094832, PctRedundant: 0.18, Distance: 10781, ChunkSize: ChunkSize4K, Seed: 1}
	// HomeDir is the FIU home directories trace: 2,501,186 fingerprints,
	// 37% redundant, mean distance 26,326.
	HomeDir = Spec{Name: "Home Dir", Fingerprints: 2501186, PctRedundant: 0.37, Distance: 26326, ChunkSize: ChunkSize4K, Seed: 2}
	// MailServer is the FIU mail server trace: 24,122,047 fingerprints,
	// 85% redundant, mean distance 246,253.
	MailServer = Spec{Name: "Mail Server", Fingerprints: 24122047, PctRedundant: 0.85, Distance: 246253, ChunkSize: ChunkSize4K, Seed: 3}
	// TimeMachine is the 6-month OSX Time Machine backup: 13,146,417
	// fingerprints, 17% redundant, mean distance 1,004,899.
	TimeMachine = Spec{Name: "Time machine", Fingerprints: 13146417, PctRedundant: 0.17, Distance: 1004899, ChunkSize: ChunkSize8K, Seed: 4}
)

// PaperWorkloads returns the four Table I workloads in paper order.
func PaperWorkloads() []Spec {
	return []Spec{WebServer, HomeDir, MailServer, TimeMachine}
}

// Scaled returns the spec shrunk by the given divisor. Both the stream
// length and the reuse distance shrink together, preserving the
// distance/length ratio that governs cache and locality behavior.
func (s Spec) Scaled(divisor int) Spec {
	if divisor <= 1 {
		return s
	}
	out := s
	out.Name = fmt.Sprintf("%s (1/%d)", s.Name, divisor)
	out.Fingerprints = s.Fingerprints / divisor
	out.Distance = s.Distance / divisor
	if out.Distance < 1 {
		out.Distance = 1
	}
	return out
}

func (s *Spec) fill() {
	if s.ChunkSize <= 0 {
		s.ChunkSize = ChunkSize4K
	}
	if s.MeanRunLength <= 0 {
		s.MeanRunLength = 32
	}
	if s.Distance < 1 {
		s.Distance = 1
	}
}

// maxWindow bounds generator memory: the replay window holds at most this
// many recent fingerprints (20 bytes each; 8M -> 160 MB).
const maxWindow = 8 << 20

// Generator produces a workload stream one fingerprint at a time.
// It is not safe for concurrent use.
type Generator struct {
	spec Spec
	rng  *rand.Rand

	pos     int
	nextUID uint64
	// window is a circular buffer of the most recent fingerprints.
	window []fingerprint.Fingerprint
	// isLast marks window slots that are still the latest occurrence of
	// their fingerprint. Duplicates are only copied from such slots, so
	// the measured reuse distance equals the sampled distance exactly.
	isLast []bool
	wcap   int

	// active duplicate run: runSrc is the absolute position of the last
	// copied source; the run continues with the next last-occurrence slot
	// after it.
	runLeft int
	runSrc  int

	pStart float64 // probability a duplicate run starts at a position
}

// NewGenerator creates a deterministic generator for the spec.
func NewGenerator(spec Spec) *Generator {
	spec.fill()
	wcap := 4 * spec.Distance
	if wcap > maxWindow {
		wcap = maxWindow
	}
	if wcap < 16 {
		wcap = 16
	}
	g := &Generator{
		spec:   spec,
		rng:    rand.New(rand.NewSource(spec.Seed ^ 0x5348_4843)), // "SHHC"
		window: make([]fingerprint.Fingerprint, 0, wcap),
		isLast: make([]bool, wcap),
		wcap:   wcap,
	}
	// Run starts are only decided at positions not already inside a run.
	// A cycle is one decision position plus, with probability q, the rest
	// of a run of mean length R, so the duplicate fraction is
	// qR / (qR + 1 - q). Solving for the target fraction p gives:
	p, r := spec.PctRedundant, float64(spec.MeanRunLength)
	g.pStart = p / (r*(1-p) + p)
	// uid namespace separated by seed so distinct workloads do not share
	// fingerprints unless explicitly seeded identically.
	g.nextUID = uint64(spec.Seed) << 40
	return g
}

// Spec returns the generator's (filled) spec.
func (g *Generator) Spec() Spec { return g.spec }

// Remaining returns how many fingerprints are left in the stream.
func (g *Generator) Remaining() int { return g.spec.Fingerprints - g.pos }

// Next returns the next fingerprint, or false when the stream is done.
func (g *Generator) Next() (fingerprint.Fingerprint, bool) {
	if g.pos >= g.spec.Fingerprints {
		return fingerprint.Zero, false
	}

	var (
		fp  fingerprint.Fingerprint
		dup bool
	)
	if g.runLeft > 0 {
		// Continue the run with the next last-occurrence slot after the
		// previous source.
		if src, ok := g.findLastOccurrence(g.runSrc+1, +1); ok {
			fp = g.copyFrom(src)
			dup = true
			g.runLeft--
		} else {
			g.runLeft = 0
		}
	}
	if !dup && len(g.window) > 0 && g.rng.Float64() < g.pStart {
		// Start a new duplicate run d positions back, snapped to the
		// nearest slot still holding a last occurrence.
		d := g.sampleDistance()
		if d > len(g.window) {
			d = len(g.window)
		}
		if d < 1 {
			d = 1
		}
		if src, ok := g.findLastOccurrence(g.pos-d, +1); ok {
			fp = g.copyFrom(src)
			dup = true
			g.runLeft = g.sampleRunLength() - 1
		}
	}
	if !dup {
		g.runLeft = 0
		fp = fingerprint.FromUint64(g.nextUID)
		g.nextUID++
	}

	g.push(fp)
	g.pos++
	return fp, true
}

// findLastOccurrence scans from absolute position `from` in direction
// `step` for a window slot still marked as a last occurrence, stopping
// before the current position. It returns the absolute source position.
func (g *Generator) findLastOccurrence(from, step int) (int, bool) {
	lo := g.pos - len(g.window)
	if from < lo {
		from = lo
	}
	for p := from; p >= lo && p < g.pos; p += step {
		if g.isLast[g.slot(p)] {
			return p, true
		}
	}
	return 0, false
}

// copyFrom emits a duplicate of the fingerprint at absolute position src,
// transferring last-occurrence status to the new position.
func (g *Generator) copyFrom(src int) fingerprint.Fingerprint {
	s := g.slot(src)
	g.isLast[s] = false
	g.runSrc = src
	return g.window[s]
}

func (g *Generator) slot(pos int) int {
	idx := pos % g.wcap
	if idx < 0 {
		idx += g.wcap
	}
	return idx
}

func (g *Generator) push(fp fingerprint.Fingerprint) {
	s := g.slot(g.pos)
	if len(g.window) < g.wcap {
		g.window = append(g.window, fp)
	} else {
		g.window[s] = fp
	}
	g.isLast[s] = true
}

func (g *Generator) sampleDistance() int {
	d := int(g.rng.ExpFloat64() * float64(g.spec.Distance))
	if d < 1 {
		d = 1
	}
	return d
}

func (g *Generator) sampleRunLength() int {
	// Geometric with the configured mean.
	mean := float64(g.spec.MeanRunLength)
	l := int(math.Ceil(g.rng.ExpFloat64() * mean))
	if l < 1 {
		l = 1
	}
	return l
}

// Drain produces the whole remaining stream as a slice. Intended for
// scaled-down workloads; full paper-scale streams are better consumed via
// Next or written to a file.
func (g *Generator) Drain() []fingerprint.Fingerprint {
	out := make([]fingerprint.Fingerprint, 0, g.Remaining())
	for {
		fp, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, fp)
	}
}

// Stats are the Table I statistics recomputed from a stream.
type Stats struct {
	Name         string
	Fingerprints int
	Unique       int
	Redundant    int
	PctRedundant float64
	// MeanDistance is the mean gap between consecutive occurrences of the
	// same fingerprint, over all duplicate events.
	MeanDistance float64
}

func (s Stats) String() string {
	return fmt.Sprintf("%-16s fingerprints=%-9d redundant=%5.1f%% distance=%.0f",
		s.Name, s.Fingerprints, s.PctRedundant*100, s.MeanDistance)
}

// Analyzer recomputes Table I statistics from any fingerprint stream.
type Analyzer struct {
	name     string
	lastSeen map[fingerprint.Fingerprint]int
	pos      int
	dups     int
	distSum  float64
}

// NewAnalyzer creates an analyzer. Memory grows with the number of unique
// fingerprints observed.
func NewAnalyzer(name string) *Analyzer {
	return &Analyzer{name: name, lastSeen: make(map[fingerprint.Fingerprint]int)}
}

// Observe feeds one fingerprint.
func (a *Analyzer) Observe(fp fingerprint.Fingerprint) {
	if last, ok := a.lastSeen[fp]; ok {
		a.dups++
		a.distSum += float64(a.pos - last)
	}
	a.lastSeen[fp] = a.pos
	a.pos++
}

// Stats returns the statistics over everything observed so far.
func (a *Analyzer) Stats() Stats {
	s := Stats{
		Name:         a.name,
		Fingerprints: a.pos,
		Unique:       len(a.lastSeen),
		Redundant:    a.dups,
	}
	if a.pos > 0 {
		s.PctRedundant = float64(a.dups) / float64(a.pos)
	}
	if a.dups > 0 {
		s.MeanDistance = a.distSum / float64(a.dups)
	}
	return s
}

// Interleave merges several generators into one stream by drawing blocks
// of blockSize round-robin, mimicking the evaluation's "mixed workloads"
// fed by concurrent clients while preserving each stream's locality.
type Interleave struct {
	gens  []*Generator
	block int
	cur   int
	left  int
}

// NewInterleave creates a block-interleaved merge of the generators.
func NewInterleave(blockSize int, gens ...*Generator) *Interleave {
	if blockSize <= 0 {
		blockSize = 128
	}
	return &Interleave{gens: gens, block: blockSize, left: blockSize}
}

// Next returns the next fingerprint of the merged stream.
func (it *Interleave) Next() (fingerprint.Fingerprint, bool) {
	for range it.gens {
		g := it.gens[it.cur]
		if g.Remaining() > 0 && it.left > 0 {
			it.left--
			return g.Next()
		}
		it.cur = (it.cur + 1) % len(it.gens)
		it.left = it.block
	}
	// All generators may still have the current one exhausted mid-block;
	// do a final sweep.
	for i, g := range it.gens {
		if g.Remaining() > 0 {
			it.cur = i
			it.left = it.block - 1
			return g.Next()
		}
	}
	return fingerprint.Zero, false
}

// Remaining sums the remaining lengths of all member streams.
func (it *Interleave) Remaining() int {
	total := 0
	for _, g := range it.gens {
		total += g.Remaining()
	}
	return total
}
