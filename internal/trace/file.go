package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"shhc/internal/fingerprint"
)

// Trace file format:
//
//	magic "SHTR" (4) | version uint16 | nameLen uint16 | name |
//	chunkSize uint32 | count uint64 | count * 20-byte fingerprints
const (
	fileMagic   = "SHTR"
	fileVersion = 1
)

// ErrBadTrace reports a malformed trace file.
var ErrBadTrace = errors.New("trace: malformed trace file")

// Writer streams fingerprints into a trace file.
type Writer struct {
	f     *os.File
	bw    *bufio.Writer
	count uint64
	// countOff is the file offset of the count field, patched on Close.
	countOff int64
}

// NewWriter creates a trace file. name and chunkSize are recorded in the
// header for the reader.
func NewWriter(path, name string, chunkSize int) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("trace: create %s: %w", path, err)
	}
	w := &Writer{f: f, bw: bufio.NewWriterSize(f, 1<<20)}

	nameBytes := []byte(name)
	if len(nameBytes) > 65535 {
		nameBytes = nameBytes[:65535]
	}
	hdr := make([]byte, 0, 4+2+2+len(nameBytes)+4+8)
	hdr = append(hdr, fileMagic...)
	hdr = binary.BigEndian.AppendUint16(hdr, fileVersion)
	hdr = binary.BigEndian.AppendUint16(hdr, uint16(len(nameBytes)))
	hdr = append(hdr, nameBytes...)
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(chunkSize))
	w.countOff = int64(len(hdr))
	hdr = binary.BigEndian.AppendUint64(hdr, 0) // count patched on Close
	if _, err := w.bw.Write(hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: write header: %w", err)
	}
	return w, nil
}

// Write appends one fingerprint.
func (w *Writer) Write(fp fingerprint.Fingerprint) error {
	if _, err := w.bw.Write(fp[:]); err != nil {
		return fmt.Errorf("trace: write fingerprint: %w", err)
	}
	w.count++
	return nil
}

// Close flushes, patches the record count into the header, and closes.
func (w *Writer) Close() error {
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return fmt.Errorf("trace: flush: %w", err)
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], w.count)
	if _, err := w.f.WriteAt(buf[:], w.countOff); err != nil {
		w.f.Close()
		return fmt.Errorf("trace: patch count: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("trace: close: %w", err)
	}
	return nil
}

// Reader streams fingerprints out of a trace file.
type Reader struct {
	f         *os.File
	br        *bufio.Reader
	name      string
	chunkSize int
	count     uint64
	read      uint64
}

// OpenReader opens a trace file and parses its header.
func OpenReader(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: open %s: %w", path, err)
	}
	r := &Reader{f: f, br: bufio.NewReaderSize(f, 1<<20)}
	if err := r.readHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

func (r *Reader) readHeader() error {
	fixed := make([]byte, 4+2+2)
	if _, err := io.ReadFull(r.br, fixed); err != nil {
		return fmt.Errorf("trace: read header: %w", err)
	}
	if string(fixed[0:4]) != fileMagic {
		return fmt.Errorf("%w: bad magic", ErrBadTrace)
	}
	if v := binary.BigEndian.Uint16(fixed[4:6]); v != fileVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrBadTrace, v)
	}
	nameLen := int(binary.BigEndian.Uint16(fixed[6:8]))
	rest := make([]byte, nameLen+4+8)
	if _, err := io.ReadFull(r.br, rest); err != nil {
		return fmt.Errorf("trace: read header: %w", err)
	}
	r.name = string(rest[:nameLen])
	r.chunkSize = int(binary.BigEndian.Uint32(rest[nameLen : nameLen+4]))
	r.count = binary.BigEndian.Uint64(rest[nameLen+4:])
	return nil
}

// Name returns the workload name recorded in the header.
func (r *Reader) Name() string { return r.name }

// ChunkSize returns the chunk size recorded in the header.
func (r *Reader) ChunkSize() int { return r.chunkSize }

// Count returns the number of fingerprints recorded in the header.
func (r *Reader) Count() uint64 { return r.count }

// Next returns the next fingerprint, or false at end of stream.
func (r *Reader) Next() (fingerprint.Fingerprint, bool, error) {
	if r.read >= r.count {
		return fingerprint.Zero, false, nil
	}
	var fp fingerprint.Fingerprint
	if _, err := io.ReadFull(r.br, fp[:]); err != nil {
		return fp, false, fmt.Errorf("%w: truncated at record %d: %v", ErrBadTrace, r.read, err)
	}
	r.read++
	return fp, true, nil
}

// Close closes the underlying file.
func (r *Reader) Close() error {
	if err := r.f.Close(); err != nil {
		return fmt.Errorf("trace: close: %w", err)
	}
	return nil
}

// WriteSpec generates the spec's whole stream into a trace file.
func WriteSpec(path string, spec Spec) (Stats, error) {
	g := NewGenerator(spec)
	w, err := NewWriter(path, spec.Name, g.Spec().ChunkSize)
	if err != nil {
		return Stats{}, err
	}
	an := NewAnalyzer(spec.Name)
	for {
		fp, ok := g.Next()
		if !ok {
			break
		}
		if err := w.Write(fp); err != nil {
			w.Close()
			return Stats{}, err
		}
		an.Observe(fp)
	}
	if err := w.Close(); err != nil {
		return Stats{}, err
	}
	return an.Stats(), nil
}
