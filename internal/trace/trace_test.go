package trace

import (
	"math"
	"path/filepath"
	"testing"

	"shhc/internal/fingerprint"
)

func TestGeneratorLength(t *testing.T) {
	spec := Spec{Name: "t", Fingerprints: 10000, PctRedundant: 0.3, Distance: 100, Seed: 7}
	g := NewGenerator(spec)
	n := 0
	for {
		_, ok := g.Next()
		if !ok {
			break
		}
		n++
	}
	if n != spec.Fingerprints {
		t.Fatalf("stream length = %d, want %d", n, spec.Fingerprints)
	}
	if _, ok := g.Next(); ok {
		t.Fatal("Next returned true after exhaustion")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	spec := Spec{Name: "t", Fingerprints: 5000, PctRedundant: 0.4, Distance: 50, Seed: 11}
	a := NewGenerator(spec).Drain()
	b := NewGenerator(spec).Drain()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	s1 := Spec{Name: "t", Fingerprints: 1000, PctRedundant: 0.2, Distance: 50, Seed: 1}
	s2 := s1
	s2.Seed = 2
	a := NewGenerator(s1).Drain()
	b := NewGenerator(s2).Drain()
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > len(a)/10 {
		t.Fatalf("streams with different seeds share %d/%d positions", same, len(a))
	}
}

func TestGeneratorHitsTargetStats(t *testing.T) {
	tests := []Spec{
		{Name: "low-dup", Fingerprints: 200000, PctRedundant: 0.18, Distance: 1000, Seed: 1},
		{Name: "mid-dup", Fingerprints: 200000, PctRedundant: 0.37, Distance: 2500, Seed: 2},
		{Name: "high-dup", Fingerprints: 200000, PctRedundant: 0.85, Distance: 5000, Seed: 3},
	}
	for _, spec := range tests {
		t.Run(spec.Name, func(t *testing.T) {
			g := NewGenerator(spec)
			an := NewAnalyzer(spec.Name)
			for {
				fp, ok := g.Next()
				if !ok {
					break
				}
				an.Observe(fp)
			}
			st := an.Stats()
			if math.Abs(st.PctRedundant-spec.PctRedundant) > 0.05 {
				t.Fatalf("redundancy = %.3f, want %.3f +/- 0.05", st.PctRedundant, spec.PctRedundant)
			}
			// Mean distance within 40% of target (clamping near stream
			// start biases it down; tolerance reflects that).
			lo, hi := 0.6*float64(spec.Distance), 1.4*float64(spec.Distance)
			if st.MeanDistance < lo || st.MeanDistance > hi {
				t.Fatalf("mean distance = %.0f, want within [%.0f, %.0f]", st.MeanDistance, lo, hi)
			}
		})
	}
}

func TestPaperWorkloadsScaled(t *testing.T) {
	// The four Table I workloads at 1/64 scale must land near their
	// redundancy targets; this is the core Table I reproduction check.
	for _, spec := range PaperWorkloads() {
		spec := spec.Scaled(64)
		t.Run(spec.Name, func(t *testing.T) {
			g := NewGenerator(spec)
			an := NewAnalyzer(spec.Name)
			for {
				fp, ok := g.Next()
				if !ok {
					break
				}
				an.Observe(fp)
			}
			st := an.Stats()
			var want float64
			switch {
			case spec.Name[:3] == "Web":
				want = 0.18
			case spec.Name[:4] == "Home":
				want = 0.37
			case spec.Name[:4] == "Mail":
				want = 0.85
			default:
				want = 0.17
			}
			if math.Abs(st.PctRedundant-want) > 0.06 {
				t.Fatalf("redundancy = %.3f, want %.3f +/- 0.06", st.PctRedundant, want)
			}
		})
	}
}

func TestScaledPreservesRatio(t *testing.T) {
	s := MailServer.Scaled(16)
	wantLen := MailServer.Fingerprints / 16
	wantDist := MailServer.Distance / 16
	if s.Fingerprints != wantLen || s.Distance != wantDist {
		t.Fatalf("scaled = %d/%d, want %d/%d", s.Fingerprints, s.Distance, wantLen, wantDist)
	}
	if MailServer.Scaled(1) != MailServer {
		t.Fatal("Scaled(1) must be identity")
	}
}

func TestAnalyzerExactStream(t *testing.T) {
	an := NewAnalyzer("exact")
	// Stream: A B A C B A -> dups: A(+2 at pos2), B(+3 at pos4), A(+3 at pos5)
	fps := []fingerprint.Fingerprint{
		fingerprint.FromUint64(1), // A pos0
		fingerprint.FromUint64(2), // B pos1
		fingerprint.FromUint64(1), // A pos2, dist 2
		fingerprint.FromUint64(3), // C pos3
		fingerprint.FromUint64(2), // B pos4, dist 3
		fingerprint.FromUint64(1), // A pos5, dist 3
	}
	for _, fp := range fps {
		an.Observe(fp)
	}
	st := an.Stats()
	if st.Fingerprints != 6 || st.Unique != 3 || st.Redundant != 3 {
		t.Fatalf("stats = %+v, want 6/3/3", st)
	}
	if got, want := st.PctRedundant, 0.5; got != want {
		t.Fatalf("PctRedundant = %v, want %v", got, want)
	}
	if got, want := st.MeanDistance, (2.0+3.0+3.0)/3.0; got != want {
		t.Fatalf("MeanDistance = %v, want %v", got, want)
	}
}

func TestAnalyzerEmpty(t *testing.T) {
	st := NewAnalyzer("empty").Stats()
	if st.Fingerprints != 0 || st.PctRedundant != 0 || st.MeanDistance != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
}

func TestInterleaveMergesAll(t *testing.T) {
	g1 := NewGenerator(Spec{Name: "a", Fingerprints: 1000, PctRedundant: 0.2, Distance: 50, Seed: 1})
	g2 := NewGenerator(Spec{Name: "b", Fingerprints: 500, PctRedundant: 0.5, Distance: 20, Seed: 2})
	it := NewInterleave(64, g1, g2)
	if it.Remaining() != 1500 {
		t.Fatalf("Remaining = %d, want 1500", it.Remaining())
	}
	n := 0
	for {
		_, ok := it.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 1500 {
		t.Fatalf("merged stream length = %d, want 1500", n)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.shtr")
	spec := Spec{Name: "file-test", Fingerprints: 3000, PctRedundant: 0.3, Distance: 100, ChunkSize: ChunkSize8K, Seed: 5}
	want := NewGenerator(spec).Drain()

	w, err := NewWriter(path, spec.Name, spec.ChunkSize)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for _, fp := range want {
		if err := w.Write(fp); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, err := OpenReader(path)
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	defer r.Close()
	if r.Name() != spec.Name {
		t.Fatalf("Name = %q, want %q", r.Name(), spec.Name)
	}
	if r.ChunkSize() != spec.ChunkSize {
		t.Fatalf("ChunkSize = %d, want %d", r.ChunkSize(), spec.ChunkSize)
	}
	if int(r.Count()) != len(want) {
		t.Fatalf("Count = %d, want %d", r.Count(), len(want))
	}
	for i, wantFP := range want {
		fp, ok, err := r.Next()
		if err != nil || !ok {
			t.Fatalf("Next(%d) = (%v, %v)", i, ok, err)
		}
		if fp != wantFP {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if _, ok, _ := r.Next(); ok {
		t.Fatal("Next past end returned a record")
	}
}

func TestWriteSpecHelper(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.shtr")
	spec := Spec{Name: "helper", Fingerprints: 2000, PctRedundant: 0.4, Distance: 100, Seed: 9}
	st, err := WriteSpec(path, spec)
	if err != nil {
		t.Fatalf("WriteSpec: %v", err)
	}
	if st.Fingerprints != 2000 {
		t.Fatalf("stats fingerprints = %d, want 2000", st.Fingerprints)
	}
	r, err := OpenReader(path)
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	defer r.Close()
	if int(r.Count()) != 2000 {
		t.Fatalf("file count = %d, want 2000", r.Count())
	}
}

func TestOpenReaderRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.shtr")
	if err := osWriteFile(path, []byte("this is not a trace file at all")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenReader(path); err == nil {
		t.Fatal("OpenReader accepted garbage")
	}
}

func TestZeroRedundancyStream(t *testing.T) {
	g := NewGenerator(Spec{Name: "unique", Fingerprints: 5000, PctRedundant: 0, Distance: 100, Seed: 3})
	an := NewAnalyzer("unique")
	for {
		fp, ok := g.Next()
		if !ok {
			break
		}
		an.Observe(fp)
	}
	st := an.Stats()
	if st.Redundant != 0 || st.Unique != 5000 {
		t.Fatalf("zero-redundancy stream produced %d dups / %d unique", st.Redundant, st.Unique)
	}
}
