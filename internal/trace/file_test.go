package trace

import "os"

// osWriteFile is shared test plumbing for writing raw files.
func osWriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
