package trace

import (
	"testing"
)

func BenchmarkGeneratorLowRedundancy(b *testing.B) {
	g := NewGenerator(Spec{Name: "b", Fingerprints: 1 << 30, PctRedundant: 0.18, Distance: 10781, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.Next(); !ok {
			b.Fatal("generator exhausted")
		}
	}
}

func BenchmarkGeneratorHighRedundancy(b *testing.B) {
	g := NewGenerator(Spec{Name: "b", Fingerprints: 1 << 30, PctRedundant: 0.85, Distance: 246253, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.Next(); !ok {
			b.Fatal("generator exhausted")
		}
	}
}

func BenchmarkAnalyzer(b *testing.B) {
	g := NewGenerator(Spec{Name: "b", Fingerprints: 1 << 30, PctRedundant: 0.5, Distance: 10000, Seed: 1})
	an := NewAnalyzer("b")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fp, _ := g.Next()
		an.Observe(fp)
	}
}
