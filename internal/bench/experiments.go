package bench

import (
	"context"
	"fmt"
	"time"

	"shhc/internal/sim"
	"shhc/internal/trace"
)

// ---------------------------------------------------------------------------
// Figure 1 — simulator: execution time for 100k lookups vs offered rate,
// cluster sizes 1/2/4/8/16.
// ---------------------------------------------------------------------------

// Figure1Config parameterizes the Figure 1 sweep.
type Figure1Config struct {
	// Requests per run; the paper uses 100,000.
	Requests int
	// Rates are the offered loads in requests/second (paper x-axis:
	// 10k..100k).
	Rates []float64
	// NodeCounts are the cluster sizes (paper: 1, 2, 4, 8, 16).
	NodeCounts []int
	// Seed fixes the simulation streams.
	Seed int64
}

func (c *Figure1Config) fill() {
	if c.Requests <= 0 {
		c.Requests = 100000
	}
	if len(c.Rates) == 0 {
		c.Rates = []float64{10000, 20000, 40000, 60000, 80000, 100000}
	}
	if len(c.NodeCounts) == 0 {
		c.NodeCounts = []int{1, 2, 4, 8, 16}
	}
}

// RunFigure1 executes the simulator sweep.
func RunFigure1(cfg Figure1Config) ([]sim.SweepPoint, error) {
	cfg.fill()
	base := sim.Config{
		Requests:      cfg.Requests,
		CacheHitRatio: 0.3,
		Seed:          cfg.Seed,
	}
	return sim.Sweep(base, cfg.NodeCounts, cfg.Rates)
}

// FormatFigure1 renders the sweep as the paper's curves: one row per rate,
// one column per cluster size, cells in microseconds of execution time.
func FormatFigure1(points []sim.SweepPoint) string {
	nodesSet := map[int]bool{}
	ratesSet := map[float64]bool{}
	cell := map[[2]int]time.Duration{}
	var nodes []int
	var rates []float64
	for _, p := range points {
		if !nodesSet[p.Nodes] {
			nodesSet[p.Nodes] = true
			nodes = append(nodes, p.Nodes)
		}
		if !ratesSet[p.RatePerSec] {
			ratesSet[p.RatePerSec] = true
			rates = append(rates, p.RatePerSec)
		}
		cell[[2]int{p.Nodes, int(p.RatePerSec)}] = p.Result.ExecutionTime
	}

	t := &table{header: []string{"rate(req/s)"}}
	for _, n := range nodes {
		t.header = append(t.header, fmt.Sprintf("%d nodes (us)", n))
	}
	for _, r := range rates {
		row := []string{fmt.Sprintf("%.0f", r)}
		for _, n := range nodes {
			row = append(row, fmt.Sprintf("%d", cell[[2]int{n, int(r)}].Microseconds()))
		}
		t.addRow(row...)
	}
	return "Figure 1: execution time for fingerprint lookups (simulator)\n" + t.String()
}

// ---------------------------------------------------------------------------
// Table I — workload characteristics.
// ---------------------------------------------------------------------------

// Table1Config parameterizes workload regeneration.
type Table1Config struct {
	// Scale divides each paper workload's length and distance (default
	// 16; 1 reproduces full paper scale but needs several GB of RAM for
	// the analyzer's last-seen map on the Mail Server workload).
	Scale int
}

// Table1Row pairs the paper's reported statistics with our measured ones.
type Table1Row struct {
	Spec     trace.Spec
	Measured trace.Stats
}

// RunTable1 generates each Table I workload at the configured scale and
// re-measures its statistics.
func RunTable1(cfg Table1Config) ([]Table1Row, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 16
	}
	rows := make([]Table1Row, 0, 4)
	for _, spec := range trace.PaperWorkloads() {
		scaled := spec.Scaled(cfg.Scale)
		g := trace.NewGenerator(scaled)
		an := trace.NewAnalyzer(scaled.Name)
		for {
			fp, ok := g.Next()
			if !ok {
				break
			}
			an.Observe(fp)
		}
		rows = append(rows, Table1Row{Spec: spec, Measured: an.Stats()})
	}
	return rows, nil
}

// FormatTable1 renders paper-vs-measured workload statistics.
func FormatTable1(rows []Table1Row, scale int) string {
	t := &table{header: []string{
		"workload", "fingerprints", "paper %red", "meas %red", "paper dist", "meas dist",
	}}
	for _, r := range rows {
		t.addRow(
			r.Measured.Name,
			fmt.Sprintf("%d", r.Measured.Fingerprints),
			fmt.Sprintf("%.0f%%", r.Spec.PctRedundant*100),
			fmt.Sprintf("%.1f%%", r.Measured.PctRedundant*100),
			fmt.Sprintf("%d", r.Spec.Distance/scaleOr1(scale)),
			fmt.Sprintf("%.0f", r.Measured.MeanDistance),
		)
	}
	return fmt.Sprintf("Table I: workload characteristics (scale 1/%d; paper distance shown scaled)\n", scaleOr1(scale)) + t.String()
}

func scaleOr1(scale int) int {
	if scale <= 0 {
		return 16
	}
	return scale
}

// ---------------------------------------------------------------------------
// Figure 5 — cluster throughput vs servers for batch sizes 1/128/2048.
// ---------------------------------------------------------------------------

// Figure5Config parameterizes the throughput experiment.
type Figure5Config struct {
	// NodeCounts are cluster sizes (paper: 1..4).
	NodeCounts []int
	// BatchSizes are queries per request (paper: 1, 128, 2048).
	BatchSizes []int
	// Fingerprints per configuration (cold cluster each time).
	Fingerprints int
	// Clients is the number of concurrent injectors (paper: 2).
	Clients int
	// Scale shrinks the mixed paper workloads feeding the run.
	Scale int
	// UseTCP routes through real loopback connections (paper topology);
	// false measures the in-process router only.
	UseTCP bool
	// ConnsPerNode is the client connection pool per node for TCP runs.
	ConnsPerNode int
}

func (c *Figure5Config) fill() {
	if len(c.NodeCounts) == 0 {
		c.NodeCounts = []int{1, 2, 3, 4}
	}
	if len(c.BatchSizes) == 0 {
		c.BatchSizes = []int{1, 128, 2048}
	}
	if c.Fingerprints <= 0 {
		c.Fingerprints = 100000
	}
	if c.Clients <= 0 {
		c.Clients = 2
	}
	if c.Scale <= 0 {
		c.Scale = 64
	}
	if c.ConnsPerNode <= 0 {
		c.ConnsPerNode = 4
	}
}

// Figure5Point is one bar of the paper's Figure 5.
type Figure5Point struct {
	Nodes      int
	BatchSize  int
	Elapsed    time.Duration
	Throughput float64 // chunks (fingerprints) per second
}

// RunFigure5 measures cluster throughput for every (nodes, batch) cell.
// Each cell runs against a cold cluster, as in the paper ("we used cold
// machines that did not contain any previous data").
func RunFigure5(cfg Figure5Config) ([]Figure5Point, error) {
	cfg.fill()
	fps := drainInterleave(mixedWorkload(cfg.Scale, 2048), cfg.Fingerprints)
	expected := len(fps) + 1

	var points []Figure5Point
	for _, nodes := range cfg.NodeCounts {
		for _, batch := range cfg.BatchSizes {
			var (
				elapsed time.Duration
				err     error
			)
			if cfg.UseTCP {
				var tc *tcpCluster
				tc, err = buildTCPCluster(nodes, 1<<14, expected, cfg.ConnsPerNode)
				if err != nil {
					return nil, err
				}
				elapsed, err = runClients(tc.cluster, fps, cfg.Clients, batch)
				tc.Close()
			} else {
				local, berr := buildLocalCluster(nodes, 1<<14, expected)
				if berr != nil {
					return nil, berr
				}
				elapsed, err = runClients(local, fps, cfg.Clients, batch)
				local.Close()
			}
			if err != nil {
				return nil, fmt.Errorf("bench: figure5 nodes=%d batch=%d: %w", nodes, batch, err)
			}
			points = append(points, Figure5Point{
				Nodes:      nodes,
				BatchSize:  batch,
				Elapsed:    elapsed,
				Throughput: float64(len(fps)) / elapsed.Seconds(),
			})
		}
	}
	return points, nil
}

// FormatFigure5 renders throughput rows per cluster size and batch size.
func FormatFigure5(points []Figure5Point) string {
	t := &table{header: []string{"nodes", "batch", "throughput(chunks/s)", "elapsed"}}
	for _, p := range points {
		t.addRow(
			fmt.Sprintf("%d", p.Nodes),
			fmt.Sprintf("%d", p.BatchSize),
			fmt.Sprintf("%.0f", p.Throughput),
			p.Elapsed.Round(time.Millisecond).String(),
		)
	}
	return "Figure 5: SHHC throughput (mixed workloads, cold clusters)\n" + t.String()
}

// ---------------------------------------------------------------------------
// Figure 5 cross-check in the queueing model: the same (nodes, batch) grid
// through the discrete-event simulator, validating that the measured TCP
// throughput shape follows from batching amortizing per-request overhead.
// ---------------------------------------------------------------------------

// RunFigure5Sim evaluates the Figure 5 grid analytically-by-simulation.
func RunFigure5Sim(nodeCounts, batchSizes []int, queries int) ([]Figure5Point, error) {
	if len(nodeCounts) == 0 {
		nodeCounts = []int{1, 2, 3, 4}
	}
	if len(batchSizes) == 0 {
		batchSizes = []int{1, 128, 2048}
	}
	if queries <= 0 {
		queries = 100000
	}
	var points []Figure5Point
	for _, nodes := range nodeCounts {
		for _, batch := range batchSizes {
			res, err := sim.Run(sim.Config{
				Nodes:         nodes,
				Requests:      queries,
				RatePerSec:    1e8, // saturating: measure capacity
				CacheHitRatio: 0.3,
				Overhead:      100 * time.Microsecond, // network round trip dominates
				HitTime:       2 * time.Microsecond,
				MissTime:      20 * time.Microsecond,
				BatchSize:     batch,
				Seed:          int64(nodes*10000 + batch),
			})
			if err != nil {
				return nil, err
			}
			points = append(points, Figure5Point{
				Nodes:      nodes,
				BatchSize:  batch,
				Elapsed:    res.ExecutionTime,
				Throughput: res.ThroughputPerSec,
			})
		}
	}
	return points, nil
}

// FormatFigure5Sim renders the simulated grid.
func FormatFigure5Sim(points []Figure5Point) string {
	t := &table{header: []string{"nodes", "batch", "throughput(chunks/s)", "exec time"}}
	for _, p := range points {
		t.addRow(
			fmt.Sprintf("%d", p.Nodes),
			fmt.Sprintf("%d", p.BatchSize),
			fmt.Sprintf("%.0f", p.Throughput),
			p.Elapsed.Round(time.Millisecond).String(),
		)
	}
	return "Figure 5 (simulated cross-check): saturated cluster capacity\n" + t.String()
}

// ---------------------------------------------------------------------------
// Figure 6 — hash value storage distribution at N=4.
// ---------------------------------------------------------------------------

// Figure6Config parameterizes the load-balance measurement.
type Figure6Config struct {
	// Nodes is the cluster size (paper: 4).
	Nodes int
	// Scale shrinks the mixed workloads inserted.
	Scale int
	// Fingerprints caps the inserted stream (0 = whole scaled stream).
	Fingerprints int
}

// Figure6Point is one node's share of stored hash entries.
type Figure6Point struct {
	Node    string
	Entries int
	Share   float64
}

// RunFigure6 inserts the mixed workloads and reports per-node entry shares.
func RunFigure6(cfg Figure6Config) ([]Figure6Point, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 4
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 64
	}
	fps := drainInterleave(mixedWorkload(cfg.Scale, 2048), cfg.Fingerprints)
	cluster, err := buildLocalCluster(cfg.Nodes, 1<<14, len(fps)+1)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	if _, err := runClients(cluster, fps, 2, 2048); err != nil {
		return nil, err
	}
	stats, err := cluster.Stats(context.Background())
	if err != nil {
		return nil, err
	}
	total := 0
	for _, st := range stats {
		total += st.StoreEntries
	}
	points := make([]Figure6Point, 0, len(stats))
	for _, st := range stats {
		share := 0.0
		if total > 0 {
			share = float64(st.StoreEntries) / float64(total)
		}
		points = append(points, Figure6Point{Node: string(st.ID), Entries: st.StoreEntries, Share: share})
	}
	return points, nil
}

// FormatFigure6 renders per-node entry shares.
func FormatFigure6(points []Figure6Point) string {
	t := &table{header: []string{"node", "hash entries", "share"}}
	for _, p := range points {
		t.addRow(p.Node, fmt.Sprintf("%d", p.Entries), fmt.Sprintf("%.1f%%", p.Share*100))
	}
	return "Figure 6: hash value storage distribution\n" + t.String()
}
