package bench

// ---------------------------------------------------------------------------
// Growth benchmark: what overfilling a fixed table costs, and what online
// linear-hashing splits buy back.
//
// Two tables are created with the same ExpectedItems estimate — one with
// resizing off (the pre-v4 behaviour: the bucket region is fixed forever)
// and one with resizing on — then both are filled in waves to 0.5×, 1×,
// 2×, 4× and 8× the estimate. Every wave measures batched insert
// throughput and lookup throughput over a 50% present / 50% absent probe
// mix, plus the table-shape stats (buckets, max chain, load factor, splits,
// free pages) that explain the curves. The fixed table's chains grow
// linearly with overfill so lookups degrade with every wave; the resizable
// table splits buckets to hold its load factor and its lookup cost stays
// flat. BENCH_growth.json is the artifact.
// ---------------------------------------------------------------------------

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"shhc/internal/device"
	"shhc/internal/fingerprint"
	"shhc/internal/hashdb"
)

// growthWaves are the cumulative fill targets as multiples of the
// create-time ExpectedItems estimate.
var growthWaves = []float64{0.5, 1, 2, 4, 8}

// growthBatch is the insert/lookup batch size; matches the pipeline's
// typical destage group.
const growthBatch = 256

// GrowthPoint is one (table kind, fill wave) cell of the growth benchmark.
type GrowthPoint struct {
	// Kind is "fixed" (resize off) or "resizable" (resize on).
	Kind string `json:"kind"`
	// Wave is the cumulative fill as a multiple of ExpectedItems.
	Wave float64 `json:"wave"`
	// Entries is the number of keys resident after the wave's inserts.
	Entries int `json:"entries"`
	// InsertThroughput covers this wave's batched inserts (keys/sec).
	InsertThroughput float64 `json:"insertOpsPerSec"`
	// LookupThroughput covers the post-wave probe mix (keys/sec), half
	// present and half absent.
	LookupThroughput float64 `json:"lookupOpsPerSec"`
	// Table shape after the wave.
	Buckets    uint64  `json:"buckets"`
	Splits     uint64  `json:"splits"`
	MaxChain   uint64  `json:"maxChain"`
	LoadFactor float64 `json:"loadFactor"`
	Pages      uint64  `json:"pages"`
	FreePages  uint64  `json:"freePages"`
}

// RunGrowthSweep fills a fixed and a resizable table to 8× their shared
// ExpectedItems estimate and measures insert/lookup throughput per wave.
// expected <= 0 selects the default estimate.
func RunGrowthSweep(expected int) ([]GrowthPoint, error) {
	if expected <= 0 {
		expected = 8192
	}
	dir, err := os.MkdirTemp("", "shhc-growth-sweep")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var points []GrowthPoint
	for _, kind := range []string{"fixed", "resizable"} {
		kp, err := runGrowthKind(dir, kind, expected)
		if err != nil {
			return nil, fmt.Errorf("bench: growth %s table: %w", kind, err)
		}
		points = append(points, kp...)
	}
	return points, nil
}

func runGrowthKind(dir, kind string, expected int) ([]GrowthPoint, error) {
	mode := hashdb.ResizeOff
	if kind == "resizable" {
		mode = hashdb.ResizeOn
	}
	path := filepath.Join(dir, kind+".shdb")
	db, err := hashdb.Create(path, hashdb.Options{
		ExpectedItems: expected,
		Resize:        mode,
		// Create sizes the bucket region for ~half-full pages at
		// ExpectedItems; splitting at 0.5 holds that contract online, so
		// the resizable table's per-lookup page-scan cost stays at the
		// design point no matter how far past the estimate it grows.
		SplitLoadFactor: 0.5,
		Device:          device.New(device.SSD, device.Account),
	})
	if err != nil {
		return nil, err
	}
	defer db.Close()

	ctx := context.Background()
	var points []GrowthPoint
	inserted := 0
	for _, wave := range growthWaves {
		target := int(wave * float64(expected))

		// Insert this wave's delta in pipeline-sized batches.
		delta := target - inserted
		start := time.Now()
		for base := inserted; base < target; base += growthBatch {
			n := growthBatch
			if base+n > target {
				n = target - base
			}
			pairs := make([]hashdb.Pair, n)
			for i := range pairs {
				k := uint64(base + i)
				pairs[i] = hashdb.Pair{FP: fingerprint.FromUint64(k), Val: hashdb.Value(k)}
			}
			if _, _, err := db.PutBatch(ctx, pairs); err != nil {
				return nil, err
			}
		}
		insertElapsed := time.Since(start)
		inserted = target

		// Probe a 50% present / 50% absent mix. Absent keys come from a
		// disjoint counter range so they hash uniformly but never match —
		// each one walks its full chain, the worst case the Bloom filter
		// normally absorbs upstream. One untimed pass warms the page
		// cache; the fastest of three timed passes drops scheduler noise.
		probes := 2 * expected
		probe := func() (time.Duration, error) {
			start := time.Now()
			for base := 0; base < probes; base += growthBatch {
				n := growthBatch
				if base+n > probes {
					n = probes - base
				}
				fps := make([]fingerprint.Fingerprint, n)
				for i := range fps {
					j := base + i
					if j%2 == 0 {
						fps[i] = fingerprint.FromUint64(uint64((j / 2) % inserted))
					} else {
						fps[i] = fingerprint.FromUint64(uint64(j) + 1<<40)
					}
				}
				if _, _, err := db.GetBatch(ctx, fps); err != nil {
					return 0, err
				}
			}
			return time.Since(start), nil
		}
		if _, err := probe(); err != nil {
			return nil, err
		}
		lookupElapsed := time.Duration(1 << 62)
		for rep := 0; rep < 3; rep++ {
			d, err := probe()
			if err != nil {
				return nil, err
			}
			if d < lookupElapsed {
				lookupElapsed = d
			}
		}

		st := db.Stats()
		points = append(points, GrowthPoint{
			Kind:             kind,
			Wave:             wave,
			Entries:          inserted,
			InsertThroughput: float64(delta) / insertElapsed.Seconds(),
			LookupThroughput: float64(probes) / lookupElapsed.Seconds(),
			Buckets:          st.Buckets,
			Splits:           st.Splits,
			MaxChain:         st.MaxChain,
			LoadFactor:       st.LoadFactor,
			Pages:            st.Pages,
			FreePages:        st.FreePages,
		})
	}
	return points, nil
}

// FormatGrowthSweep renders the sweep as a text table.
func FormatGrowthSweep(points []GrowthPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %6s %9s %12s %12s %9s %7s %9s %7s\n",
		"kind", "wave", "entries", "insert/s", "lookup/s", "buckets", "splits", "maxchain", "lf")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10s %5.1fx %9d %12.0f %12.0f %9d %7d %9d %7.2f\n",
			p.Kind, p.Wave, p.Entries, p.InsertThroughput, p.LookupThroughput,
			p.Buckets, p.Splits, p.MaxChain, p.LoadFactor)
	}
	return b.String()
}

// EmitGrowthJSON writes the sweep to path as the BENCH_growth.json artifact.
func EmitGrowthJSON(path string, points []GrowthPoint) error {
	data, err := json.MarshalIndent(struct {
		Experiment string        `json:"experiment"`
		Points     []GrowthPoint `json:"points"`
	}{Experiment: "online-growth", Points: points}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
