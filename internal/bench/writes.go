package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"shhc/internal/core"
	"shhc/internal/device"
	"shhc/internal/fingerprint"
	"shhc/internal/hashdb"
	"shhc/internal/ring"
)

// ---------------------------------------------------------------------------
// Ablation: the write path — per-key read-modify-write vs batched
// group-committed inserts vs the asynchronous write-back destager.
// ---------------------------------------------------------------------------

// Write-sweep I/O modes.
const (
	// WriteModeLocked is the pre-pipeline baseline: every insert's store
	// write runs under its stripe lock (device concurrency capped at the
	// stripe count).
	WriteModeLocked = "locked"
	// WriteModePerKey uses the asynchronous pipeline but one store
	// round-trip per key (the batched write path hidden): the PR-2/3
	// behavior.
	WriteModePerKey = "per-key"
	// WriteModeBatched coalesces the batch's inserts into one
	// read-modify-write per bucket page (hashdb.PutBatch).
	WriteModeBatched = "batched"
	// WriteModeAsyncDestage is write-back: inserts park dirty in RAM and
	// the destager group-commits evicted entries in page-coalesced waves.
	WriteModeAsyncDestage = "async-destage"
	// WriteModeAsyncDup is async-destage fed a duplicate-heavy update
	// trace (half the keys, updated twice), exercising the dirty buffer's
	// update coalescing.
	WriteModeAsyncDup = "async-destage-dup"
)

// WritePoint is one cell of the write-path ablation.
type WritePoint struct {
	Mode    string `json:"mode"`
	Stripes int    `json:"stripes"`
	Ops     int    `json:"ops"` // inserts + updates fed through the node
	// Throughput counts ops per wall second, including the final Flush
	// (every mode pays its full durability cost).
	Throughput   float64       `json:"throughputOpsPerSec"`
	Elapsed      time.Duration `json:"elapsedNanos"`
	DeviceReads  int64         `json:"deviceReads"`
	DeviceWrites int64         `json:"deviceWrites"`
	// EntriesPerWrite is ops / device page writes: >1 means the write
	// path coalesced entries into shared page writes.
	EntriesPerWrite float64 `json:"entriesPerWrite"`
	// Destage* are the write-back pipeline's counters (async modes only).
	DestagedEntries  uint64 `json:"destagedEntries,omitempty"`
	DestagePages     uint64 `json:"destagePages,omitempty"`
	DestageWaves     uint64 `json:"destageWaves,omitempty"`
	DestageCoalesced uint64 `json:"destageCoalesced,omitempty"`
}

// noBatchPutStore forwards the Store and BatchGetter surfaces of an
// on-disk table while hiding BatchPutter, so the per-key baseline pays one
// read-modify-write round-trip per insert. Reads stay coalesced in every
// mode; the sweep isolates the write path.
type noBatchPutStore struct{ db *hashdb.DB }

func (s noBatchPutStore) Get(fp fingerprint.Fingerprint) (hashdb.Value, bool, error) {
	return s.db.Get(fp)
}
func (s noBatchPutStore) Has(fp fingerprint.Fingerprint) (bool, error) { return s.db.Has(fp) }
func (s noBatchPutStore) Put(fp fingerprint.Fingerprint, v hashdb.Value) (bool, error) {
	return s.db.Put(fp, v)
}
func (s noBatchPutStore) Len() int     { return s.db.Len() }
func (s noBatchPutStore) Sync() error  { return s.db.Sync() }
func (s noBatchPutStore) Close() error { return s.db.Close() }
func (s noBatchPutStore) GetBatch(ctx context.Context, fps []fingerprint.Fingerprint) ([]hashdb.Value, []bool, error) {
	return s.db.GetBatch(ctx, fps)
}

// RunWriteSweep measures insert throughput across write-path modes and
// stripe counts on a fresh on-disk hash table whose device sleeps its
// modeled SSD latency. Every mode feeds the same count of operations in
// batches and ends with a Flush, so write-back modes pay their full
// durability cost inside the measurement.
func RunWriteSweep(fingerprints, batchSize int, stripeCounts []int) ([]WritePoint, error) {
	if fingerprints <= 0 {
		fingerprints = 4096
	}
	if batchSize <= 0 {
		batchSize = 1024
	}
	if len(stripeCounts) == 0 {
		stripeCounts = []int{1, 4, 16}
	}
	dir, err := os.MkdirTemp("", "shhc-write-sweep")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	modes := []string{WriteModeLocked, WriteModePerKey, WriteModeBatched, WriteModeAsyncDestage, WriteModeAsyncDup}
	var points []WritePoint
	for _, stripes := range stripeCounts {
		for _, mode := range modes {
			p, err := runWriteCell(dir, mode, stripes, fingerprints, batchSize)
			if err != nil {
				return nil, fmt.Errorf("bench: write sweep %s/stripes=%d: %w", mode, stripes, err)
			}
			points = append(points, p)
		}
	}
	return points, nil
}

func runWriteCell(dir, mode string, stripes, ops, batchSize int) (WritePoint, error) {
	dev := device.New(device.SSD, device.Sleep)
	path := filepath.Join(dir, fmt.Sprintf("%s-%d.db", mode, stripes))
	db, err := hashdb.Create(path, hashdb.Options{ExpectedItems: ops, Device: dev})
	if err != nil {
		return WritePoint{}, err
	}

	var store hashdb.Store = db
	if mode == WriteModePerKey {
		store = noBatchPutStore{db: db}
	}
	wb := mode == WriteModeAsyncDestage || mode == WriteModeAsyncDup
	node, err := core.NewNode(core.NodeConfig{
		ID:            ring.NodeID(fmt.Sprintf("write-sweep-%s-%d", mode, stripes)),
		Store:         store,
		CacheSize:     256, // far below the key count: inserts reach the SSD tier
		BloomExpected: 2 * ops,
		Stripes:       stripes,
		LockedIO:      mode == WriteModeLocked,
		WriteBack:     wb,
		// Destage waves sized like the insert batches, so the async and
		// batched cells commit comparable page-coalesced groups.
		DestageBatch: batchSize,
		DestageQueue: 4 * batchSize,
	})
	if err != nil {
		db.Close()
		return WritePoint{}, err
	}

	// The workload: unique inserts, except the dup-heavy cell, which
	// inserts half the keys and then updates each once (updates coalesce
	// in the cache and the dirty buffer).
	keys := ops
	if mode == WriteModeAsyncDup {
		keys = ops / 2
	}
	writesBefore := dev.Stats().Writes
	readsBefore := dev.Stats().Reads
	start := time.Now()
	pairs := make([]core.Pair, 0, batchSize)
	feed := func(base uint64, n int, valBase uint64) error {
		for i := 0; i < n; i++ {
			pairs = append(pairs, core.Pair{FP: fingerprint.FromUint64(base + uint64(i)), Val: core.Value(valBase + uint64(i))})
			if len(pairs) == batchSize || i == n-1 {
				if _, err := node.BatchLookupOrInsert(context.Background(), pairs); err != nil {
					return err
				}
				pairs = pairs[:0]
			}
		}
		return nil
	}
	if err := feed(0, keys, 1); err != nil {
		node.Close()
		return WritePoint{}, err
	}
	if mode == WriteModeAsyncDup {
		// Second pass: in-place updates of every key.
		for i := 0; i < keys; i++ {
			if err := node.Insert(context.Background(), fingerprint.FromUint64(uint64(i)), core.Value(uint64(1_000_000+i))); err != nil {
				node.Close()
				return WritePoint{}, err
			}
		}
	}
	if err := node.Flush(); err != nil {
		node.Close()
		return WritePoint{}, err
	}
	elapsed := time.Since(start)

	st, err := node.Stats(context.Background())
	if err != nil {
		node.Close()
		return WritePoint{}, err
	}
	devStats := dev.Stats()
	if err := node.Close(); err != nil {
		return WritePoint{}, err
	}

	p := WritePoint{
		Mode:             mode,
		Stripes:          stripes,
		Ops:              ops,
		Throughput:       float64(ops) / elapsed.Seconds(),
		Elapsed:          elapsed,
		DeviceReads:      devStats.Reads - readsBefore,
		DeviceWrites:     devStats.Writes - writesBefore,
		DestagedEntries:  st.Destage.Entries,
		DestagePages:     st.Destage.Pages,
		DestageWaves:     st.Destage.Waves,
		DestageCoalesced: st.Destage.Coalesced,
	}
	if p.DeviceWrites > 0 {
		p.EntriesPerWrite = float64(ops) / float64(p.DeviceWrites)
	}
	return p, nil
}

// FormatWriteSweep renders the sweep.
func FormatWriteSweep(points []WritePoint) string {
	t := &table{header: []string{
		"stripes", "write mode", "throughput(ops/s)", "device writes", "entries/write", "destaged/pages", "elapsed",
	}}
	for _, p := range points {
		ratio := "-"
		if p.DestagePages > 0 {
			ratio = fmt.Sprintf("%.1f", float64(p.DestagedEntries)/float64(p.DestagePages))
		}
		t.addRow(
			fmt.Sprintf("%d", p.Stripes),
			p.Mode,
			fmt.Sprintf("%.0f", p.Throughput),
			fmt.Sprintf("%d", p.DeviceWrites),
			fmt.Sprintf("%.1f", p.EntriesPerWrite),
			ratio,
			p.Elapsed.Round(time.Millisecond).String(),
		)
	}
	return "Ablation: write path (on-disk table, sleeping SSD, cold cache; every mode includes its final Flush)\n" + t.String()
}

// EmitWritesJSON writes the sweep to path as JSON for regression tracking
// (BENCH_writes.json in CI and CHANGES.md).
func EmitWritesJSON(path string, points []WritePoint) error {
	data, err := json.MarshalIndent(struct {
		Experiment string       `json:"experiment"`
		Points     []WritePoint `json:"points"`
	}{Experiment: "write-path-ablation", Points: points}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
