package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"shhc/internal/core"
	"shhc/internal/device"
	"shhc/internal/directio"
	"shhc/internal/fingerprint"
	"shhc/internal/hashdb"
	"shhc/internal/ring"
)

// ---------------------------------------------------------------------------
// Ablation: the zero-alloc hot path — cache-resident ("cold-free") batch
// lookups under concurrent readers, locked vs lock-free reads, across the
// three index backends (modeled RAM store, buffered file, O_DIRECT file).
//
// Every lookup hits the RAM cache, so the store backend should not matter
// for throughput — the backend axis proves exactly that, while the read
// axis measures what dropping the stripe mutex from the cache-hit path
// buys when readers outnumber stripes (Amdahl: with 4 stripes and more
// readers than stripes, the locked path serializes on mutexes the
// lock-free path never takes).
// ---------------------------------------------------------------------------

// Hot-path sweep axes.
const (
	// HotPathStoreModeled is the in-RAM MemStore with an accounting SSD
	// model — the configuration of the paper-figure benchmarks.
	HotPathStoreModeled = "modeled"
	// HotPathStoreFile is the on-disk hash table over buffered os.File I/O.
	HotPathStoreFile = "file"
	// HotPathStoreDirect is the on-disk hash table over the O_DIRECT
	// backend (falling back to buffered where unsupported; see the Direct
	// field).
	HotPathStoreDirect = "direct"

	// HotPathReadsLocked takes the stripe mutex on every cache hit (the
	// pre-PR-7 behavior, kept as the LockedReads ablation knob).
	HotPathReadsLocked = "locked"
	// HotPathReadsLockFree answers cache hits from the atomic index
	// without any lock.
	HotPathReadsLockFree = "lockfree"
)

// HotPathPoint is one cell of the hot-path ablation.
type HotPathPoint struct {
	Store   string `json:"store"`
	Reads   string `json:"reads"`
	Stripes int    `json:"stripes"`
	Readers int    `json:"readers"`
	Ops     int64  `json:"ops"`
	// Throughput counts cache-hit lookups per wall second, summed across
	// readers.
	Throughput float64       `json:"throughputLookupsPerSec"`
	Elapsed    time.Duration `json:"elapsedNanos"`
	// AllocsPerOp is heap allocations per lookup over the measured window
	// (runtime mallocs delta / ops). The per-batch results slice is the
	// only expected source, so this sits near batchSize⁻¹, not near 1.
	AllocsPerOp float64 `json:"allocsPerOp"`
	// Direct reports whether O_DIRECT actually engaged (direct store only;
	// false on filesystems without support, where the backend fell back).
	Direct bool `json:"oDirect,omitempty"`
}

// RunHotPathSweep measures cache-resident lookup throughput across
// {modeled, file, direct} × {locked, lockfree} at a fixed stripe count of
// 4 with more readers than stripes. fingerprints, batchSize, and readers
// fall back to 8192, 256, and 8 when zero.
func RunHotPathSweep(fingerprints, batchSize, readers int) ([]HotPathPoint, error) {
	if fingerprints <= 0 {
		fingerprints = 8192
	}
	if batchSize <= 0 {
		batchSize = 256
	}
	if readers <= 0 {
		readers = 8
	}
	// Whole batches only: readers walk the key space in batch-sized
	// windows.
	fingerprints -= fingerprints % batchSize

	dir, err := os.MkdirTemp("", "shhc-hotpath")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var points []HotPathPoint
	for _, store := range []string{HotPathStoreModeled, HotPathStoreFile, HotPathStoreDirect} {
		for _, reads := range []string{HotPathReadsLocked, HotPathReadsLockFree} {
			p, err := runHotPathCell(dir, store, reads, fingerprints, batchSize, readers)
			if err != nil {
				return nil, fmt.Errorf("bench: hotpath %s/%s: %w", store, reads, err)
			}
			points = append(points, p)
		}
	}
	return points, nil
}

func runHotPathCell(dir, storeKind, reads string, fingerprints, batchSize, readers int) (HotPathPoint, error) {
	dev := device.New(device.SSD, device.Account)
	var store hashdb.Store
	var direct bool
	switch storeKind {
	case HotPathStoreModeled:
		store = hashdb.NewMemStore(dev)
	case HotPathStoreFile:
		db, err := hashdb.Create(filepath.Join(dir, fmt.Sprintf("file-%s.shdb", reads)), hashdb.Options{ExpectedItems: fingerprints, Device: dev})
		if err != nil {
			return HotPathPoint{}, err
		}
		store = db
	case HotPathStoreDirect:
		path := filepath.Join(dir, fmt.Sprintf("direct-%s.shdb", reads))
		f, err := directio.Open(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644, directio.Options{})
		if err != nil {
			return HotPathPoint{}, err
		}
		direct = f.Direct()
		db, err := hashdb.CreateFile(f, path, hashdb.Options{ExpectedItems: fingerprints, Device: dev})
		if err != nil {
			return HotPathPoint{}, err
		}
		store = db
	default:
		return HotPathPoint{}, fmt.Errorf("unknown store %q", storeKind)
	}

	const stripes = 4
	node, err := core.NewNode(core.NodeConfig{
		ID:            ring.NodeID(fmt.Sprintf("hotpath-%s-%s", storeKind, reads)),
		Store:         store,
		CacheSize:     2 * fingerprints, // cache-resident: the sweep is cold-free by construction
		BloomExpected: 2 * fingerprints,
		Stripes:       stripes,
		LockedReads:   reads == HotPathReadsLocked,
	})
	if err != nil {
		store.Close()
		return HotPathPoint{}, err
	}
	defer node.Close()

	ctx := context.Background()
	fps := make([]fingerprint.Fingerprint, fingerprints)
	pairs := make([]core.Pair, 0, batchSize)
	for i := range fps {
		fps[i] = fingerprint.FromUint64(uint64(i))
		pairs = append(pairs, core.Pair{FP: fps[i], Val: core.Value(i + 1)})
		if len(pairs) == batchSize {
			if _, err := node.BatchLookupOrInsert(ctx, pairs); err != nil {
				return HotPathPoint{}, err
			}
			pairs = pairs[:0]
		}
	}
	// Warm pass: every key answered from cache before the clock starts.
	for lo := 0; lo < fingerprints; lo += batchSize {
		rs, err := node.LookupBatch(ctx, fps[lo:lo+batchSize])
		if err != nil {
			return HotPathPoint{}, err
		}
		for i, r := range rs {
			if !r.Exists || r.Source != core.SourceCache {
				return HotPathPoint{}, fmt.Errorf("warm lookup %d = %+v; want cache hit (cell is not cold-free)", lo+i, r)
			}
		}
	}

	const measureFor = 300 * time.Millisecond
	var (
		ops     atomic.Int64
		stop    atomic.Bool
		wg      sync.WaitGroup
		errOnce sync.Once
		readErr error
	)
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			// Staggered start offsets keep readers off one another's
			// batches (and, in locked mode, spread the initial stripe
			// contention realistically).
			for base := r * batchSize; !stop.Load(); base += batchSize {
				lo := base % fingerprints
				if _, err := node.LookupBatch(ctx, fps[lo:lo+batchSize]); err != nil {
					errOnce.Do(func() { readErr = err })
					return
				}
				ops.Add(int64(batchSize))
			}
		}(r)
	}
	time.Sleep(measureFor)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if readErr != nil {
		return HotPathPoint{}, readErr
	}

	n := ops.Load()
	p := HotPathPoint{
		Store:      storeKind,
		Reads:      reads,
		Stripes:    stripes,
		Readers:    readers,
		Ops:        n,
		Throughput: float64(n) / elapsed.Seconds(),
		Elapsed:    elapsed,
		Direct:     direct,
	}
	if n > 0 {
		p.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(n)
	}
	return p, nil
}

// FormatHotPathSweep renders the sweep with the lock-free speedup per
// store.
func FormatHotPathSweep(points []HotPathPoint) string {
	locked := map[string]float64{}
	for _, p := range points {
		if p.Reads == HotPathReadsLocked {
			locked[p.Store] = p.Throughput
		}
	}
	t := &table{header: []string{
		"store", "reads", "stripes", "readers", "throughput(lookups/s)", "allocs/op", "speedup",
	}}
	for _, p := range points {
		speed := "1.00x"
		if base := locked[p.Store]; base > 0 && p.Reads != HotPathReadsLocked {
			speed = fmt.Sprintf("%.2fx", p.Throughput/base)
		}
		store := p.Store
		if p.Store == HotPathStoreDirect && !p.Direct {
			store += " (fallback)"
		}
		t.addRow(
			store,
			p.Reads,
			fmt.Sprintf("%d", p.Stripes),
			fmt.Sprintf("%d", p.Readers),
			fmt.Sprintf("%.0f", p.Throughput),
			fmt.Sprintf("%.4f", p.AllocsPerOp),
			speed,
		)
	}
	return "Ablation: zero-alloc hot path (cache-resident batch lookups, Account mode; speedup = lockfree/locked per store)\n" + t.String()
}

// EmitHotPathJSON writes the sweep to path as JSON for regression tracking
// (BENCH_hotpath.json in CI and CHANGES.md).
func EmitHotPathJSON(path string, points []HotPathPoint) error {
	data, err := json.MarshalIndent(struct {
		Experiment string         `json:"experiment"`
		Points     []HotPathPoint `json:"points"`
	}{Experiment: "hotpath-ablation", Points: points}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
