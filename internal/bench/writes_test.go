package bench

import (
	"os"
	"path/filepath"
	"testing"
)

// TestWriteSweepBatchedBeatsPerKey is the acceptance gate for the
// group-committed write path: on modeled SSD latency, batched inserts and
// the asynchronous destager must beat the per-key read-modify-write
// baseline, with device writes reduced by page coalescing. The real run
// shows ~16× (see CHANGES.md); the assertion floor is 1.5× because the
// batched path is CPU-bound once device time collapses, and the race
// detector (CI runs this suite under -race) slows CPU work far more than
// the modeled device sleeps that dominate the per-key baseline.
func TestWriteSweepBatchedBeatsPerKey(t *testing.T) {
	points, err := RunWriteSweep(2048, 512, []int{4})
	if err != nil {
		t.Fatalf("RunWriteSweep: %v", err)
	}
	byMode := map[string]*WritePoint{}
	for i := range points {
		byMode[points[i].Mode] = &points[i]
	}
	perKey := byMode[WriteModePerKey]
	batched := byMode[WriteModeBatched]
	async := byMode[WriteModeAsyncDestage]
	dup := byMode[WriteModeAsyncDup]
	if perKey == nil || batched == nil || async == nil || dup == nil {
		t.Fatalf("sweep returned %+v, want all modes", points)
	}
	if batched.Throughput < 1.5*perKey.Throughput {
		t.Fatalf("batched %.0f ops/s is not > 1.5x per-key %.0f ops/s",
			batched.Throughput, perKey.Throughput)
	}
	if async.Throughput < 1.5*perKey.Throughput {
		t.Fatalf("async-destage %.0f ops/s is not > 1.5x per-key %.0f ops/s",
			async.Throughput, perKey.Throughput)
	}
	if batched.DeviceWrites >= perKey.DeviceWrites {
		t.Fatalf("batched wrote %d device pages vs per-key %d; coalescing should write fewer",
			batched.DeviceWrites, perKey.DeviceWrites)
	}
	// The duplicate-heavy trace must show write coalescing: more entries
	// destaged than device pages written.
	if dup.DestagePages == 0 || float64(dup.DestagedEntries)/float64(dup.DestagePages) <= 1 {
		t.Fatalf("dup-heavy destage ratio = %d entries / %d pages, want > 1",
			dup.DestagedEntries, dup.DestagePages)
	}
	t.Logf("per-key %.0f, batched %.0f (%.1fx), async %.0f (%.1fx); dup coalescing %d/%d",
		perKey.Throughput, batched.Throughput, batched.Throughput/perKey.Throughput,
		async.Throughput, async.Throughput/perKey.Throughput,
		dup.DestagedEntries, dup.DestagePages)

	// The JSON emitter round-trips to disk.
	path := filepath.Join(t.TempDir(), "writes.json")
	if err := EmitWritesJSON(path, points); err != nil {
		t.Fatalf("EmitWritesJSON: %v", err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("emitted JSON missing or empty: %v", err)
	}
}
