package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"shhc/internal/baseline"
	"shhc/internal/core"
	"shhc/internal/device"
	"shhc/internal/fingerprint"
	"shhc/internal/hashdb"
	"shhc/internal/ring"
	"shhc/internal/trace"
)

// ---------------------------------------------------------------------------
// Ablation: batch size sweep (the latency/throughput tradeoff the paper
// leaves as future work in §V).
// ---------------------------------------------------------------------------

// BatchSweepPoint is one batch size's throughput/latency tradeoff.
type BatchSweepPoint struct {
	BatchSize    int
	Throughput   float64
	MeanPerBatch time.Duration // round-trip time of one batch request
}

// RunBatchSweep measures throughput and per-request latency across batch
// sizes on a fixed-size TCP cluster.
func RunBatchSweep(nodes, fingerprints, scale int, batchSizes []int) ([]BatchSweepPoint, error) {
	if len(batchSizes) == 0 {
		batchSizes = []int{1, 8, 32, 128, 512, 2048}
	}
	fps := drainInterleave(mixedWorkload(scale, 2048), fingerprints)

	var points []BatchSweepPoint
	for _, batch := range batchSizes {
		tc, err := buildTCPCluster(nodes, 1<<14, len(fps)+1, 4)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		var batches int
		pairs := make([]core.Pair, 0, batch)
		for i, fp := range fps {
			pairs = append(pairs, core.Pair{FP: fp, Val: core.Value(i + 1)})
			if len(pairs) >= batch {
				if _, err := tc.cluster.BatchLookupOrInsert(context.Background(), pairs); err != nil {
					tc.Close()
					return nil, err
				}
				batches++
				pairs = pairs[:0]
			}
		}
		if len(pairs) > 0 {
			if _, err := tc.cluster.BatchLookupOrInsert(context.Background(), pairs); err != nil {
				tc.Close()
				return nil, err
			}
			batches++
		}
		elapsed := time.Since(start)
		tc.Close()

		p := BatchSweepPoint{
			BatchSize:  batch,
			Throughput: float64(len(fps)) / elapsed.Seconds(),
		}
		if batches > 0 {
			p.MeanPerBatch = elapsed / time.Duration(batches)
		}
		points = append(points, p)
	}
	return points, nil
}

// FormatBatchSweep renders the sweep.
func FormatBatchSweep(points []BatchSweepPoint) string {
	t := &table{header: []string{"batch", "throughput(chunks/s)", "mean batch RTT"}}
	for _, p := range points {
		t.addRow(
			fmt.Sprintf("%d", p.BatchSize),
			fmt.Sprintf("%.0f", p.Throughput),
			p.MeanPerBatch.Round(time.Microsecond).String(),
		)
	}
	return "Ablation: batch size sweep (single sequential client, TCP cluster)\n" + t.String()
}

// ---------------------------------------------------------------------------
// Ablation: LRU cache size (how much RAM absorbs the lookup load).
// ---------------------------------------------------------------------------

// CacheSweepPoint is one cache size's effectiveness.
type CacheSweepPoint struct {
	CacheSize int
	HitRate   float64
	SSDReads  int64
}

// RunCacheSweep replays a high-redundancy workload (Mail Server) through
// single nodes with varying cache sizes.
func RunCacheSweep(scale int, cacheSizes []int) ([]CacheSweepPoint, error) {
	if len(cacheSizes) == 0 {
		cacheSizes = []int{1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16}
	}
	spec := trace.MailServer.Scaled(scale)
	fps := trace.NewGenerator(spec).Drain()

	var points []CacheSweepPoint
	for _, size := range cacheSizes {
		dev := device.New(device.SSD, device.Account)
		node, err := core.NewNode(core.NodeConfig{
			ID:            "cache-sweep",
			Store:         hashdb.NewMemStore(dev),
			CacheSize:     size,
			BloomExpected: len(fps) + 1,
		})
		if err != nil {
			return nil, err
		}
		for i, fp := range fps {
			if _, err := node.LookupOrInsert(context.Background(), fp, core.Value(i+1)); err != nil {
				node.Close()
				return nil, err
			}
		}
		st, err := node.Stats(context.Background())
		if err != nil {
			node.Close()
			return nil, err
		}
		devStats := dev.Stats()
		node.Close()
		points = append(points, CacheSweepPoint{
			CacheSize: size,
			HitRate:   float64(st.CacheHits) / float64(st.Lookups),
			SSDReads:  devStats.Reads,
		})
	}
	return points, nil
}

// FormatCacheSweep renders the sweep.
func FormatCacheSweep(points []CacheSweepPoint) string {
	t := &table{header: []string{"cache entries", "hit rate", "ssd reads"}}
	for _, p := range points {
		t.addRow(
			fmt.Sprintf("%d", p.CacheSize),
			fmt.Sprintf("%.1f%%", p.HitRate*100),
			fmt.Sprintf("%d", p.SSDReads),
		)
	}
	return "Ablation: LRU cache size (Mail Server workload, single node)\n" + t.String()
}

// ---------------------------------------------------------------------------
// Ablation: Bloom filter on/off.
// ---------------------------------------------------------------------------

// BloomPoint compares SSD reads with and without the filter.
type BloomPoint struct {
	Bloom    bool
	SSDReads int64
	Elapsed  time.Duration
}

// RunBloomAblation replays a low-redundancy workload (Web Server: 18%)
// through nodes with and without Bloom filters. Without the filter, every
// new fingerprint costs an SSD read that discovers nothing.
func RunBloomAblation(scale int) ([]BloomPoint, error) {
	spec := trace.WebServer.Scaled(scale)
	fps := trace.NewGenerator(spec).Drain()

	var points []BloomPoint
	for _, enabled := range []bool{true, false} {
		dev := device.New(device.SSD, device.Account)
		node, err := core.NewNode(core.NodeConfig{
			ID:            "bloom-ablation",
			Store:         hashdb.NewMemStore(dev),
			CacheSize:     1 << 12,
			DisableBloom:  !enabled,
			BloomExpected: len(fps) + 1,
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for i, fp := range fps {
			if _, err := node.LookupOrInsert(context.Background(), fp, core.Value(i+1)); err != nil {
				node.Close()
				return nil, err
			}
		}
		elapsed := time.Since(start)
		devStats := dev.Stats()
		node.Close()
		points = append(points, BloomPoint{Bloom: enabled, SSDReads: devStats.Reads, Elapsed: elapsed})
	}
	return points, nil
}

// FormatBloomAblation renders the comparison.
func FormatBloomAblation(points []BloomPoint) string {
	t := &table{header: []string{"bloom filter", "ssd reads", "elapsed"}}
	for _, p := range points {
		state := "off"
		if p.Bloom {
			state = "on"
		}
		t.addRow(state, fmt.Sprintf("%d", p.SSDReads), p.Elapsed.Round(time.Millisecond).String())
	}
	return "Ablation: Bloom filter (Web Server workload, 18% redundant)\n" + t.String()
}

// ---------------------------------------------------------------------------
// Ablation: index backend designs (SHHC hybrid vs baselines).
// ---------------------------------------------------------------------------

// BackendPoint is one index design's cost on the same workload.
type BackendPoint struct {
	Kind       baseline.Kind
	Elapsed    time.Duration
	DeviceBusy time.Duration // modeled device time (the honest comparator)
	EnergyJ    float64       // modeled active device energy (future work §V)
}

// RunBackendComparison replays the Home Dir workload through each baseline
// node design. DeviceBusy is the modeled hardware cost: this is where the
// HDD index loses by orders of magnitude, reproducing the motivation for
// flash-based indexes (ChunkStash's 7x-60x claim, paper §I).
func RunBackendComparison(scale int) ([]BackendPoint, error) {
	spec := trace.HomeDir.Scaled(scale)
	fps := trace.NewGenerator(spec).Drain()

	kinds := []baseline.Kind{
		baseline.KindHybrid,
		baseline.KindChunkStash,
		baseline.KindDiskIndex,
		baseline.KindRAMOnly,
	}
	var points []BackendPoint
	for _, kind := range kinds {
		dev, node, err := newInstrumentedBaseline(kind, len(fps)+1)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for i, fp := range fps {
			if _, err := node.LookupOrInsert(context.Background(), fp, core.Value(i+1)); err != nil {
				node.Close()
				return nil, err
			}
		}
		elapsed := time.Since(start)
		busy := dev.Stats().Busy
		energy := device.EnergyFor(dev)
		node.Close()
		points = append(points, BackendPoint{Kind: kind, Elapsed: elapsed, DeviceBusy: busy, EnergyJ: energy})
	}
	return points, nil
}

// newInstrumentedBaseline builds a baseline node around a device we keep a
// handle to, so modeled busy time is observable.
func newInstrumentedBaseline(kind baseline.Kind, expected int) (*device.Device, core.Backend, error) {
	switch kind {
	case baseline.KindHybrid:
		dev := device.New(device.SSD, device.Account)
		node, err := core.NewNode(core.NodeConfig{
			ID:            "backend-hybrid",
			Store:         hashdb.NewMemStore(dev),
			CacheSize:     expected / 16,
			BloomExpected: expected,
		})
		return dev, node, err
	case baseline.KindChunkStash:
		dev := device.New(device.SSD, device.Account)
		stash := baseline.NewChunkStash(expected, dev)
		node, err := core.NewNode(core.NodeConfig{ID: "backend-stash", Store: stash, DisableBloom: true})
		return dev, node, err
	case baseline.KindDiskIndex:
		dev := device.New(device.HDD, device.Account)
		node, err := core.NewNode(core.NodeConfig{ID: "backend-disk", Store: hashdb.NewMemStore(dev), DisableBloom: true})
		return dev, node, err
	case baseline.KindRAMOnly:
		dev := device.New(device.RAM, device.Account)
		node, err := core.NewNode(core.NodeConfig{ID: "backend-ram", Store: hashdb.NewMemStore(dev), DisableBloom: true})
		return dev, node, err
	}
	return nil, nil, fmt.Errorf("bench: unknown baseline kind %v", kind)
}

// FormatBackendComparison renders the comparison.
func FormatBackendComparison(points []BackendPoint) string {
	t := &table{header: []string{"index design", "modeled device busy", "modeled energy (J)", "wall elapsed"}}
	for _, p := range points {
		t.addRow(
			p.Kind.String(),
			p.DeviceBusy.Round(time.Millisecond).String(),
			fmt.Sprintf("%.3f", p.EnergyJ),
			p.Elapsed.Round(time.Millisecond).String(),
		)
	}
	return "Ablation: index backend designs (Home Dir workload, single node)\n" + t.String()
}

// ---------------------------------------------------------------------------
// Ablation: dedup completeness — SHHC's exact distributed index vs a
// Sparse-Indexing-style sampled index (related work, FAST'09).
// ---------------------------------------------------------------------------

// CompletenessPoint compares duplicate detection on one workload.
type CompletenessPoint struct {
	Workload    string
	ExactDups   int
	SparseDups  int
	SparseRAMB  int
	ExactRAMB   int // full in-RAM index equivalent footprint
	SparseShare float64
}

// RunCompleteness replays each paper workload through an exact index and a
// sparse sampled index, reporting how many duplicates each catches and the
// RAM each needs.
func RunCompleteness(scale int) ([]CompletenessPoint, error) {
	var points []CompletenessPoint
	for _, spec := range trace.PaperWorkloads() {
		scaled := spec.Scaled(scale)
		g := trace.NewGenerator(scaled)
		sparse := baseline.NewSparseIndex(baseline.SparseConfig{SampleShift: 6, MaxChampions: 4})
		exact := make(map[fingerprint.Fingerprint]struct{})

		const segSize = 1024
		seg := make([]fingerprint.Fingerprint, 0, segSize)
		exactDups, sparseDups, total := 0, 0, 0
		flush := func() {
			if len(seg) == 0 {
				return
			}
			res := sparse.DedupSegment(seg)
			for _, d := range res.Dup {
				if d {
					sparseDups++
				}
			}
			seg = seg[:0]
		}
		for {
			fp, ok := g.Next()
			if !ok {
				break
			}
			total++
			if _, dup := exact[fp]; dup {
				exactDups++
			}
			exact[fp] = struct{}{}
			seg = append(seg, fp)
			if len(seg) == segSize {
				flush()
			}
		}
		flush()

		p := CompletenessPoint{
			Workload:   scaled.Name,
			ExactDups:  exactDups,
			SparseDups: sparseDups,
			SparseRAMB: sparse.Stats().RAMBytes,
			ExactRAMB:  len(exact) * (fingerprint.Size + 8),
		}
		if exactDups > 0 {
			p.SparseShare = float64(sparseDups) / float64(exactDups)
		}
		points = append(points, p)
	}
	return points, nil
}

// FormatCompleteness renders the comparison.
func FormatCompleteness(points []CompletenessPoint) string {
	t := &table{header: []string{"workload", "exact dups", "sparse dups", "caught", "sparse RAM", "exact RAM"}}
	for _, p := range points {
		t.addRow(
			p.Workload,
			fmt.Sprintf("%d", p.ExactDups),
			fmt.Sprintf("%d", p.SparseDups),
			fmt.Sprintf("%.1f%%", p.SparseShare*100),
			fmt.Sprintf("%dKB", p.SparseRAMB/1024),
			fmt.Sprintf("%dKB", p.ExactRAMB/1024),
		)
	}
	return "Ablation: dedup completeness — exact (SHHC) vs sparse-indexing baseline\n" + t.String()
}

// ---------------------------------------------------------------------------
// Ablation: virtual node count vs ring balance (Figure 6 sensitivity).
// ---------------------------------------------------------------------------

// VNodePoint is one virtual-node setting's balance outcome.
type VNodePoint struct {
	VNodes      int
	MaxOverMin  float64 // key-space share spread
	EntrySpread float64 // actual stored-entry spread (max/min)
}

// RunVNodeSweep measures ring balance across virtual-node counts at N=4.
func RunVNodeSweep(fingerprints int, vnodeCounts []int) ([]VNodePoint, error) {
	if len(vnodeCounts) == 0 {
		vnodeCounts = []int{1, 4, 16, 64, 128, 512}
	}
	var points []VNodePoint
	for _, vn := range vnodeCounts {
		r := ring.New(vn)
		counts := map[ring.NodeID]int{}
		for i := 0; i < 4; i++ {
			id := ring.NodeID(fmt.Sprintf("node-%d", i))
			if err := r.Add(id); err != nil {
				return nil, err
			}
			counts[id] = 0
		}
		for i := 0; i < fingerprints; i++ {
			id, err := r.Lookup(fingerprint.FromUint64(uint64(i)))
			if err != nil {
				return nil, err
			}
			counts[id]++
		}
		minC, maxC := fingerprints, 0
		for _, c := range counts {
			if c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
		}
		spread := 0.0
		if minC > 0 {
			spread = float64(maxC) / float64(minC)
		}
		points = append(points, VNodePoint{
			VNodes:      vn,
			MaxOverMin:  r.Balance().MaxOverMin,
			EntrySpread: spread,
		})
	}
	return points, nil
}

// FormatVNodeSweep renders the sweep.
func FormatVNodeSweep(points []VNodePoint) string {
	t := &table{header: []string{"vnodes/node", "keyspace max/min", "entries max/min"}}
	for _, p := range points {
		t.addRow(
			fmt.Sprintf("%d", p.VNodes),
			fmt.Sprintf("%.2f", p.MaxOverMin),
			fmt.Sprintf("%.2f", p.EntrySpread),
		)
	}
	return "Ablation: virtual nodes vs load balance (N=4)\n" + t.String()
}

// ---------------------------------------------------------------------------
// Ablation: hot-path lock stripes (how lookup throughput scales with the
// node's stripe count under concurrent clients).
// ---------------------------------------------------------------------------

// StripePoint is one stripe count's concurrent-lookup throughput.
type StripePoint struct {
	Stripes    int
	Clients    int
	Throughput float64 // lookups per second
	Elapsed    time.Duration
}

// RunStripeSweep hammers a single node from `clients` goroutines with a
// cache-resident working set, once per stripe count. With one stripe every
// lookup serializes behind one lock (the seed design); with more, lookups
// of different fingerprints proceed in parallel. On a single-core machine
// the sweep is flat — the stripes remove lock contention, not CPU work —
// so read it on the hardware you care about.
func RunStripeSweep(clients, lookups int, stripeCounts []int) ([]StripePoint, error) {
	if clients <= 0 {
		clients = 2 * runtime.GOMAXPROCS(0)
	}
	if lookups <= 0 {
		lookups = 200000
	}
	if len(stripeCounts) == 0 {
		stripeCounts = []int{1, 4, 16, 64}
	}
	const working = 1 << 14

	var points []StripePoint
	for _, stripes := range stripeCounts {
		node, err := core.NewNode(core.NodeConfig{
			ID:            "stripe-sweep",
			Store:         hashdb.NewMemStore(nil),
			CacheSize:     working,
			BloomExpected: working * 2,
			Stripes:       stripes,
		})
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < working; i++ {
			if _, err := node.LookupOrInsert(context.Background(), fingerprint.FromUint64(i), core.Value(i)); err != nil {
				node.Close()
				return nil, err
			}
		}

		perClient := lookups / clients
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			firstErr error
		)
		start := time.Now()
		for g := 0; g < clients; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				i := uint64(g) * (working / uint64(clients))
				for k := 0; k < perClient; k++ {
					if _, err := node.LookupOrInsert(context.Background(), fingerprint.FromUint64(i%working), 0); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					i += 7
				}
			}(g)
		}
		wg.Wait()
		elapsed := time.Since(start)
		node.Close()
		if firstErr != nil {
			return nil, firstErr
		}
		total := perClient * clients
		points = append(points, StripePoint{
			Stripes:    stripes,
			Clients:    clients,
			Throughput: float64(total) / elapsed.Seconds(),
			Elapsed:    elapsed,
		})
	}
	return points, nil
}

// FormatStripeSweep renders the sweep.
func FormatStripeSweep(points []StripePoint) string {
	t := &table{header: []string{"stripes", "clients", "throughput(lookups/s)", "elapsed"}}
	for _, p := range points {
		t.addRow(
			fmt.Sprintf("%d", p.Stripes),
			fmt.Sprintf("%d", p.Clients),
			fmt.Sprintf("%.0f", p.Throughput),
			p.Elapsed.Round(time.Millisecond).String(),
		)
	}
	return "Ablation: hot-path lock stripes (single node, cache-resident set)\n" + t.String()
}

// ---------------------------------------------------------------------------
// Ablation: locked I/O vs the asynchronous two-phase pipeline (does taking
// the SSD out of the stripe locks buy what it should?).
// ---------------------------------------------------------------------------

// AsyncPoint is one cell of the async-pipeline ablation: a device profile
// crossed with an I/O mode.
type AsyncPoint struct {
	Device      string
	Mode        string // "locked" (probe under the stripe lock) or "async"
	Throughput  float64
	Elapsed     time.Duration
	DeviceReads int64
}

// RunAsyncAblation compares the LockedIO baseline (every SSD probe holds
// its stripe lock, so a batch's device concurrency is capped at the stripe
// count) against the asynchronous pipeline (probes run outside the locks
// and coalesce into page-granular batch reads) on a real on-disk hash
// table whose device sleeps its modeled latency. Stripes is pinned at 4 —
// the paper's node count, and few enough that the lock bound is visible —
// and the cache is tiny so every lookup reaches the SSD tier. The same
// pre-seeded table is probed read-only in batches; only the I/O mode and
// device model vary.
func RunAsyncAblation(fingerprints, batchSize int, models []device.Model) ([]AsyncPoint, error) {
	if fingerprints <= 0 {
		fingerprints = 2048
	}
	if batchSize <= 0 {
		batchSize = 512
	}
	if len(models) == 0 {
		models = []device.Model{device.SSD, device.HDD}
	}
	dir, err := os.MkdirTemp("", "shhc-async-ablation")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	fps := make([]fingerprint.Fingerprint, fingerprints)
	for i := range fps {
		fps[i] = fingerprint.FromUint64(uint64(i))
	}

	var points []AsyncPoint
	for _, model := range models {
		for _, mode := range []string{"locked", "async"} {
			// Seed on a non-sleeping accountant, then reopen the same
			// file on the sleeping device so only lookups pay latency.
			path := filepath.Join(dir, fmt.Sprintf("%s-%s.db", model.Name, mode))
			db, err := hashdb.Create(path, hashdb.Options{
				ExpectedItems: fingerprints,
				Device:        device.New(device.SSD, device.Account),
			})
			if err != nil {
				return nil, err
			}
			for i, f := range fps {
				if _, err := db.Put(f, hashdb.Value(i+1)); err != nil {
					db.Close()
					return nil, err
				}
			}
			if err := db.Close(); err != nil {
				return nil, err
			}
			dev := device.New(model, device.Sleep)
			db, err = hashdb.Open(path, dev)
			if err != nil {
				return nil, err
			}
			node, err := core.NewNode(core.NodeConfig{
				ID:            ring.NodeID("async-ablation-" + model.Name + "-" + mode),
				Store:         db,
				CacheSize:     64, // cold: the working set is far larger
				BloomExpected: fingerprints * 2,
				Stripes:       4,
				LockedIO:      mode == "locked",
			})
			if err != nil {
				db.Close()
				return nil, err
			}
			readsBefore := dev.Stats().Reads
			start := time.Now()
			for off := 0; off < len(fps); off += batchSize {
				end := off + batchSize
				if end > len(fps) {
					end = len(fps)
				}
				rs, lerr := node.LookupBatch(context.Background(), fps[off:end])
				if lerr != nil {
					node.Close()
					return nil, lerr
				}
				for k, r := range rs {
					if !r.Exists {
						node.Close()
						return nil, fmt.Errorf("bench: async ablation: seeded fingerprint %d missing", off+k)
					}
				}
			}
			elapsed := time.Since(start)
			reads := dev.Stats().Reads - readsBefore
			if err := node.Close(); err != nil {
				return nil, err
			}
			points = append(points, AsyncPoint{
				Device:      model.Name,
				Mode:        mode,
				Throughput:  float64(len(fps)) / elapsed.Seconds(),
				Elapsed:     elapsed,
				DeviceReads: reads,
			})
		}
	}
	return points, nil
}

// FormatAsyncAblation renders the comparison.
func FormatAsyncAblation(points []AsyncPoint) string {
	t := &table{header: []string{"device", "i/o mode", "throughput(lookups/s)", "device reads", "elapsed"}}
	for _, p := range points {
		t.addRow(
			p.Device,
			p.Mode,
			fmt.Sprintf("%.0f", p.Throughput),
			fmt.Sprintf("%d", p.DeviceReads),
			p.Elapsed.Round(time.Millisecond).String(),
		)
	}
	return "Ablation: locked I/O vs asynchronous pipelined lookups (on-disk table, sleeping device, stripes=4, cold cache)\n" + t.String()
}
