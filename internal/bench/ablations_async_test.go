package bench

import (
	"testing"

	"shhc/internal/device"
)

// TestAsyncAblationSSDBeatsLockedIO is the acceptance gate for the
// two-phase pipeline: with modeled SSD latency (Sleep mode) and stripes=4,
// batch lookup throughput through the asynchronous pipeline must be
// strictly better than the locked-I/O baseline, because the baseline's
// device concurrency is capped at 4 while the pipeline coalesces probes
// into page reads and overlaps them to the device's modeled depth. The
// expected gap is several-fold; asserting strict improvement keeps the
// test robust on slow CI machines.
func TestAsyncAblationSSDBeatsLockedIO(t *testing.T) {
	points, err := RunAsyncAblation(1024, 256, []device.Model{device.SSD})
	if err != nil {
		t.Fatalf("RunAsyncAblation: %v", err)
	}
	var locked, async *AsyncPoint
	for i := range points {
		switch points[i].Mode {
		case "locked":
			locked = &points[i]
		case "async":
			async = &points[i]
		}
	}
	if locked == nil || async == nil {
		t.Fatalf("ablation returned %+v, want both modes", points)
	}
	if async.Throughput <= locked.Throughput {
		t.Fatalf("async throughput %.0f lookups/s is not better than locked %.0f lookups/s",
			async.Throughput, locked.Throughput)
	}
	if async.DeviceReads >= locked.DeviceReads {
		t.Fatalf("async charged %d device reads vs locked %d; coalescing should read fewer pages than fingerprints",
			async.DeviceReads, locked.DeviceReads)
	}
	t.Logf("locked: %.0f lookups/s (%d reads, %v); async: %.0f lookups/s (%d reads, %v); speedup %.1fx",
		locked.Throughput, locked.DeviceReads, locked.Elapsed,
		async.Throughput, async.DeviceReads, async.Elapsed,
		async.Throughput/locked.Throughput)
}
