package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"shhc/internal/core"
	"shhc/internal/fingerprint"
	"shhc/internal/ring"
	"shhc/internal/rpc"
	"shhc/internal/wire"
)

// ---------------------------------------------------------------------------
// Benchmark: the multiplexed transport (wire protocol 5).
//
// Two questions, two scenarios:
//
//  1. Scale — can a handful of TCP connections carry tens of thousands of
//     concurrent logical clients? Each logical client is a goroutine with
//     its own stream handle (Client.OpenStream) issuing synchronous
//     lookups; the sweep pins the TCP connection count and scales the
//     logical client count far past it.
//
//  2. Isolation — when one consumer stalls (issues pipelined batches and
//     never collects the results), does its exhausted credit window stay
//     its own problem? Three cells: a healthy v5 baseline, v5 with a
//     staller, and v4 with a staller (the legacy single-stream path,
//     where nothing bounds the stalled consumer's buffered responses).
//     The isolation ratio is stalled-v5 / baseline-v5 healthy throughput.
// ---------------------------------------------------------------------------

// Transport scenario names, as they appear in the JSON.
const (
	TransportScenarioScale    = "mux-scale"
	TransportScenarioScaleV4  = "mux-scale/legacy-v4"
	TransportScenarioBaseline = "stalled-consumer/baseline-v5"
	TransportScenarioStallV5  = "stalled-consumer/stalled-v5"
	TransportScenarioStallV4  = "stalled-consumer/stalled-v4"
)

// TransportPoint is one cell of the transport benchmark.
type TransportPoint struct {
	Scenario string `json:"scenario"`
	// Protocol is the negotiated wire version the cell ran at.
	Protocol int `json:"protocol"`
	// TCPConns is the number of TCP connections carrying the cell's load.
	TCPConns int `json:"tcpConns"`
	// LogicalClients is the number of concurrent callers (each with its
	// own stream handle in v5 cells).
	LogicalClients int `json:"logicalClients"`
	// Ops counts completed lookups (scale) or batch entries (stall cells)
	// by the healthy workers only — the staller's traffic never counts.
	Ops        int64         `json:"ops"`
	Throughput float64       `json:"throughputOpsPerSec"`
	Elapsed    time.Duration `json:"elapsedNanos"`
	// ServerCreditStalls / ServerBytesInFlight snapshot the server's mux
	// after the cell: stalls prove the staller actually exhausted its
	// window; bytes-in-flight show how much queued memory the credit cap
	// bounds (v5) or fails to bound (v4, always zero — no mux).
	ServerCreditStalls  uint64 `json:"serverCreditStalls"`
	ServerBytesInFlight uint64 `json:"serverBytesInFlight"`
	ServerWindowUpdates uint64 `json:"serverWindowUpdates"`
	// ClientCreditStalls counts callers blocked waiting for send credit.
	ClientCreditStalls uint64 `json:"clientCreditStalls"`
}

// TransportReport is the emitted benchmark: the cells plus the headline
// isolation ratio (stalled-v5 healthy throughput over baseline-v5).
type TransportReport struct {
	Experiment    string           `json:"experiment"`
	Points        []TransportPoint `json:"points"`
	IsolatedRatio float64          `json:"isolatedRatio"`
}

// transportBackend answers every request from RAM with constant work, so
// the benchmark measures the wire, not an index.
type transportBackend struct{ id ring.NodeID }

func (b *transportBackend) ID() ring.NodeID { return b.id }

func (b *transportBackend) Lookup(ctx context.Context, fp fingerprint.Fingerprint) (core.LookupResult, error) {
	return core.LookupResult{Exists: true, Source: core.SourceCache, Value: 1}, nil
}

func (b *transportBackend) LookupOrInsert(ctx context.Context, fp fingerprint.Fingerprint, val core.Value) (core.LookupResult, error) {
	return core.LookupResult{Exists: true, Source: core.SourceCache, Value: val}, nil
}

func (b *transportBackend) BatchLookupOrInsert(ctx context.Context, pairs []core.Pair) ([]core.LookupResult, error) {
	rs := make([]core.LookupResult, len(pairs))
	for i := range pairs {
		rs[i] = core.LookupResult{Exists: true, Source: core.SourceCache, Value: pairs[i].Val}
	}
	return rs, nil
}

func (b *transportBackend) Insert(ctx context.Context, fp fingerprint.Fingerprint, val core.Value) error {
	return nil
}

func (b *transportBackend) Stats(ctx context.Context) (core.NodeStats, error) {
	return core.NodeStats{ID: b.id}, nil
}

func (b *transportBackend) Close() error { return nil }

// RunTransportBench runs both scenarios. logicalClients, tcpConns, and
// measureMillis fall back to 10000, 16, and 300 when zero. tcpConns is
// clamped to 16 — the point of the exercise is that it stays small.
func RunTransportBench(logicalClients, tcpConns, measureMillis int) (TransportReport, error) {
	if logicalClients <= 0 {
		logicalClients = 10000
	}
	if tcpConns <= 0 {
		tcpConns = 16
	}
	if tcpConns > 16 {
		tcpConns = 16
	}
	measure := 300 * time.Millisecond
	if measureMillis > 0 {
		measure = time.Duration(measureMillis) * time.Millisecond
	}

	report := TransportReport{Experiment: "mux-transport"}

	scale, err := runTransportScale(logicalClients, tcpConns, wire.Version5, measure)
	if err != nil {
		return report, fmt.Errorf("bench: transport scale: %w", err)
	}
	report.Points = append(report.Points, scale)

	// The same load on the legacy v4 path (shared pipelined conns, no
	// streams): the cost-of-mux comparison at scale.
	scaleV4, err := runTransportScale(logicalClients, tcpConns, wire.Version4, measure)
	if err != nil {
		return report, fmt.Errorf("bench: transport scale v4: %w", err)
	}
	scaleV4.Scenario = TransportScenarioScaleV4
	report.Points = append(report.Points, scaleV4)

	var baseline TransportPoint
	for _, cell := range []struct {
		scenario string
		version  int
		staller  bool
	}{
		{TransportScenarioBaseline, wire.Version5, false},
		{TransportScenarioStallV5, wire.Version5, true},
		{TransportScenarioStallV4, wire.Version4, true},
	} {
		p, err := runTransportStallCell(cell.scenario, cell.version, cell.staller, measure)
		if err != nil {
			return report, fmt.Errorf("bench: transport %s: %w", cell.scenario, err)
		}
		report.Points = append(report.Points, p)
		if cell.scenario == TransportScenarioBaseline {
			baseline = p
		}
		if cell.scenario == TransportScenarioStallV5 && baseline.Throughput > 0 {
			report.IsolatedRatio = p.Throughput / baseline.Throughput
		}
	}
	return report, nil
}

// startTransportServer serves the RAM backend on a loopback port.
func startTransportServer() (*rpc.Server, string, error) {
	srv := rpc.NewServer(&transportBackend{id: "bench-transport"}, rpc.ServerConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	return srv, addr.String(), nil
}

// runTransportScale: logicalClients goroutines, each with its own stream
// handle, share tcpConns TCP connections and hammer synchronous lookups.
func runTransportScale(logicalClients, tcpConns, version int, measure time.Duration) (TransportPoint, error) {
	srv, addr, err := startTransportServer()
	if err != nil {
		return TransportPoint{}, err
	}
	defer srv.Close()

	client, err := rpc.Dial("bench-transport", addr, rpc.ClientConfig{Conns: tcpConns, MaxVersion: version})
	if err != nil {
		return TransportPoint{}, err
	}
	defer client.Close()

	ctx := context.Background()
	var (
		ops     atomic.Int64
		stop    atomic.Bool
		wg      sync.WaitGroup
		errOnce sync.Once
		runErr  error
	)
	start := time.Now()
	for i := 0; i < logicalClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stream := client.OpenStream()
			fp := fingerprint.FromUint64(uint64(i))
			for !stop.Load() {
				if _, err := stream.LookupOrInsert(ctx, fp, core.Value(i+1)); err != nil {
					errOnce.Do(func() { runErr = err })
					return
				}
				ops.Add(1)
			}
		}(i)
	}
	time.Sleep(measure)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	if runErr != nil {
		return TransportPoint{}, runErr
	}

	st, err := client.Stats(ctx)
	if err != nil {
		return TransportPoint{}, err
	}
	n := ops.Load()
	return TransportPoint{
		Scenario:            TransportScenarioScale,
		Protocol:            client.Version(),
		TCPConns:            tcpConns,
		LogicalClients:      logicalClients,
		Ops:                 n,
		Throughput:          float64(n) / elapsed.Seconds(),
		Elapsed:             elapsed,
		ServerCreditStalls:  st.Transport.CreditStalls,
		ServerBytesInFlight: st.Transport.BytesInFlight,
		ServerWindowUpdates: st.Transport.WindowUpdates,
		ClientCreditStalls:  client.CreditStalls(),
	}, nil
}

// Stall-cell shape: a few healthy workers run synchronous batches on
// their own streams over ONE TCP connection, while (in stalled cells) a
// staller on its own stream pipelines batch futures it never collects.
const (
	stallHealthyWorkers = 8
	stallBatchSize      = 64
)

func runTransportStallCell(scenario string, version int, staller bool, measure time.Duration) (TransportPoint, error) {
	srv, addr, err := startTransportServer()
	if err != nil {
		return TransportPoint{}, err
	}
	defer srv.Close()

	// One TCP connection: isolation must come from stream credit, not
	// from the staller being parked on a different socket.
	client, err := rpc.Dial("bench-transport", addr, rpc.ClientConfig{Conns: 1, MaxVersion: version})
	if err != nil {
		return TransportPoint{}, err
	}
	defer client.Close()
	if client.Version() != version {
		return TransportPoint{}, fmt.Errorf("negotiated v%d, want v%d", client.Version(), version)
	}

	var (
		ops     atomic.Int64
		stop    atomic.Bool
		wg      sync.WaitGroup
		errOnce sync.Once
		runErr  error
	)
	// The staller gets its own cancellable context: cancelling it is the
	// only way to unblock a goroutine parked on exhausted stream credit,
	// and the healthy workers must not see that cancellation.
	ctx := context.Background()
	stallCtx, cancel := context.WithCancel(context.Background())
	defer cancel()

	if staller {
		// The staller pipelines futures and never collects them: its
		// stream's response credit runs dry on the server, then its
		// request credit runs dry here, and it blocks — alone.
		wg.Add(1)
		go func() {
			defer wg.Done()
			stream := client.OpenStream()
			pairs := make([]core.Pair, stallBatchSize)
			for i := range pairs {
				pairs[i] = core.Pair{FP: fingerprint.FromUint64(uint64(i)), Val: core.Value(i + 1)}
			}
			for !stop.Load() {
				call := stream.GoBatchLookupOrInsert(stallCtx, pairs)
				_ = call // never collected; cancel() settles it at teardown
				if stallCtx.Err() != nil {
					return
				}
			}
		}()
	}

	start := time.Now()
	for w := 0; w < stallHealthyWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stream := client.OpenStream()
			pairs := make([]core.Pair, stallBatchSize)
			for i := range pairs {
				pairs[i] = core.Pair{FP: fingerprint.FromUint64(uint64(w*stallBatchSize + i)), Val: core.Value(i + 1)}
			}
			for !stop.Load() {
				if _, err := stream.BatchLookupOrInsert(ctx, pairs); err != nil {
					errOnce.Do(func() { runErr = err })
					return
				}
				ops.Add(int64(stallBatchSize))
			}
		}(w)
	}
	time.Sleep(measure)
	elapsed := time.Since(start)

	// Snapshot server stats BEFORE teardown: bytes-in-flight shows the
	// staller's bounded backlog only while it is still queued.
	st, statsErr := client.Stats(ctx)

	stop.Store(true)
	cancel() // unblock the staller (credit wait) and settle its futures
	wg.Wait()
	if runErr != nil {
		return TransportPoint{}, runErr
	}
	if statsErr != nil {
		return TransportPoint{}, statsErr
	}

	n := ops.Load()
	clients := stallHealthyWorkers
	if staller {
		clients++
	}
	return TransportPoint{
		Scenario:            scenario,
		Protocol:            version,
		TCPConns:            1,
		LogicalClients:      clients,
		Ops:                 n,
		Throughput:          float64(n) / elapsed.Seconds(),
		Elapsed:             elapsed,
		ServerCreditStalls:  st.Transport.CreditStalls,
		ServerBytesInFlight: st.Transport.BytesInFlight,
		ServerWindowUpdates: st.Transport.WindowUpdates,
		ClientCreditStalls:  client.CreditStalls(),
	}, nil
}

// FormatTransportBench renders the report with the isolation headline.
func FormatTransportBench(r TransportReport) string {
	t := &table{header: []string{
		"scenario", "proto", "tcpConns", "clients", "throughput(ops/s)", "srvStalls", "srvBytesQ", "cliStalls",
	}}
	for _, p := range r.Points {
		t.addRow(
			p.Scenario,
			fmt.Sprintf("v%d", p.Protocol),
			fmt.Sprintf("%d", p.TCPConns),
			fmt.Sprintf("%d", p.LogicalClients),
			fmt.Sprintf("%.0f", p.Throughput),
			fmt.Sprintf("%d", p.ServerCreditStalls),
			fmt.Sprintf("%d", p.ServerBytesInFlight),
			fmt.Sprintf("%d", p.ClientCreditStalls),
		)
	}
	return fmt.Sprintf(
		"Benchmark: multiplexed transport (streams + credit flow control; isolation ratio = stalled-v5/baseline-v5 healthy throughput: %.2f)\n%s",
		r.IsolatedRatio, t.String())
}

// EmitTransportJSON writes the report to path as JSON for regression
// tracking (BENCH_transport.json in CI and CHANGES.md).
func EmitTransportJSON(path string, r TransportReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
