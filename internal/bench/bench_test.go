package bench

import (
	"strings"
	"testing"
)

func TestRunFigure1SmallGrid(t *testing.T) {
	points, err := RunFigure1(Figure1Config{
		Requests:   5000,
		Rates:      []float64{20000, 100000},
		NodeCounts: []int{1, 4},
		Seed:       1,
	})
	if err != nil {
		t.Fatalf("RunFigure1: %v", err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	// At 100k req/s the 4-node cluster must beat the single node.
	var one, four int64
	for _, p := range points {
		if p.RatePerSec != 100000 {
			continue
		}
		if p.Nodes == 1 {
			one = p.Result.ExecutionTime.Microseconds()
		} else {
			four = p.Result.ExecutionTime.Microseconds()
		}
	}
	if four >= one {
		t.Fatalf("4-node exec time (%dus) not below 1-node (%dus)", four, one)
	}
	out := FormatFigure1(points)
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "4 nodes") {
		t.Fatalf("FormatFigure1 output malformed:\n%s", out)
	}
}

func TestRunTable1SmallScale(t *testing.T) {
	rows, err := RunTable1(Table1Config{Scale: 256})
	if err != nil {
		t.Fatalf("RunTable1: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Measured.Fingerprints == 0 {
			t.Fatalf("workload %s measured empty", r.Spec.Name)
		}
		diff := r.Measured.PctRedundant - r.Spec.PctRedundant
		if diff < -0.08 || diff > 0.08 {
			t.Fatalf("workload %s redundancy %.3f vs paper %.3f", r.Spec.Name, r.Measured.PctRedundant, r.Spec.PctRedundant)
		}
	}
	out := FormatTable1(rows, 256)
	if !strings.Contains(out, "Mail Server") {
		t.Fatalf("FormatTable1 output malformed:\n%s", out)
	}
}

func TestRunFigure5InProcess(t *testing.T) {
	points, err := RunFigure5(Figure5Config{
		NodeCounts:   []int{1, 2},
		BatchSizes:   []int{1, 128},
		Fingerprints: 4000,
		Scale:        512,
		UseTCP:       false,
	})
	if err != nil {
		t.Fatalf("RunFigure5: %v", err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	for _, p := range points {
		if p.Throughput <= 0 {
			t.Fatalf("point %+v has zero throughput", p)
		}
	}
	out := FormatFigure5(points)
	if !strings.Contains(out, "Figure 5") {
		t.Fatalf("FormatFigure5 output malformed:\n%s", out)
	}
}

func TestRunFigure5TCPBatchingWins(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP throughput comparison is slow")
	}
	points, err := RunFigure5(Figure5Config{
		NodeCounts:   []int{2},
		BatchSizes:   []int{1, 128},
		Fingerprints: 6000,
		Scale:        512,
		UseTCP:       true,
	})
	if err != nil {
		t.Fatalf("RunFigure5: %v", err)
	}
	var unbatched, batched float64
	for _, p := range points {
		if p.BatchSize == 1 {
			unbatched = p.Throughput
		} else {
			batched = p.Throughput
		}
	}
	// The paper reports ~an order of magnitude; require at least 3x to
	// keep the test robust on loaded machines.
	if batched < 3*unbatched {
		t.Fatalf("batch=128 throughput %.0f not >> batch=1 %.0f", batched, unbatched)
	}
}

func TestRunFigure5SimShape(t *testing.T) {
	points, err := RunFigure5Sim([]int{1, 4}, []int{1, 128}, 20000)
	if err != nil {
		t.Fatalf("RunFigure5Sim: %v", err)
	}
	tp := map[[2]int]float64{}
	for _, p := range points {
		tp[[2]int{p.Nodes, p.BatchSize}] = p.Throughput
	}
	// Batching beats single queries at both sizes.
	if tp[[2]int{1, 128}] < 3*tp[[2]int{1, 1}] {
		t.Fatalf("simulated batching benefit missing: %v", tp)
	}
	// More nodes increase saturated capacity.
	if tp[[2]int{4, 128}] < 2*tp[[2]int{1, 128}] {
		t.Fatalf("simulated node scaling missing: %v", tp)
	}
	if s := FormatFigure5Sim(points); !strings.Contains(s, "cross-check") {
		t.Fatalf("FormatFigure5Sim output malformed:\n%s", s)
	}
}

func TestRunCompleteness(t *testing.T) {
	points, err := RunCompleteness(512)
	if err != nil {
		t.Fatalf("RunCompleteness: %v", err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	for _, p := range points {
		if p.SparseDups > p.ExactDups {
			t.Fatalf("%s: sparse (%d) exceeds exact (%d)", p.Workload, p.SparseDups, p.ExactDups)
		}
		if p.ExactDups > 0 && p.SparseShare <= 0 {
			t.Fatalf("%s: sparse found nothing", p.Workload)
		}
		if p.SparseRAMB >= p.ExactRAMB {
			t.Fatalf("%s: sparse RAM %d not below exact %d", p.Workload, p.SparseRAMB, p.ExactRAMB)
		}
	}
	if s := FormatCompleteness(points); !strings.Contains(s, "completeness") {
		t.Fatalf("FormatCompleteness output malformed:\n%s", s)
	}
}

func TestRunFigure6Balance(t *testing.T) {
	points, err := RunFigure6(Figure6Config{Nodes: 4, Scale: 256, Fingerprints: 20000})
	if err != nil {
		t.Fatalf("RunFigure6: %v", err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	totalShare := 0.0
	for _, p := range points {
		totalShare += p.Share
		if p.Share < 0.10 || p.Share > 0.40 {
			t.Fatalf("node %s share %.1f%%, want 25%% +/- 15", p.Node, p.Share*100)
		}
	}
	if totalShare < 0.999 || totalShare > 1.001 {
		t.Fatalf("shares sum to %v", totalShare)
	}
	out := FormatFigure6(points)
	if !strings.Contains(out, "Figure 6") {
		t.Fatalf("FormatFigure6 output malformed:\n%s", out)
	}
}

func TestRunBatchSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP sweep is slow")
	}
	points, err := RunBatchSweep(2, 3000, 512, []int{1, 64})
	if err != nil {
		t.Fatalf("RunBatchSweep: %v", err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	if points[1].Throughput <= points[0].Throughput {
		t.Fatalf("batch=64 (%.0f/s) not faster than batch=1 (%.0f/s)",
			points[1].Throughput, points[0].Throughput)
	}
	_ = FormatBatchSweep(points)
}

func TestRunCacheSweep(t *testing.T) {
	points, err := RunCacheSweep(512, []int{1 << 6, 1 << 12})
	if err != nil {
		t.Fatalf("RunCacheSweep: %v", err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	if points[1].HitRate < points[0].HitRate {
		t.Fatalf("larger cache hit rate %.3f below smaller %.3f", points[1].HitRate, points[0].HitRate)
	}
	if points[1].SSDReads > points[0].SSDReads {
		t.Fatalf("larger cache caused more SSD reads (%d > %d)", points[1].SSDReads, points[0].SSDReads)
	}
	_ = FormatCacheSweep(points)
}

func TestRunBloomAblation(t *testing.T) {
	points, err := RunBloomAblation(512)
	if err != nil {
		t.Fatalf("RunBloomAblation: %v", err)
	}
	var on, off int64
	for _, p := range points {
		if p.Bloom {
			on = p.SSDReads
		} else {
			off = p.SSDReads
		}
	}
	// Web Server is 82% unique: without Bloom, every unique miss reads
	// the SSD; with Bloom nearly none do.
	if on*2 > off {
		t.Fatalf("bloom on = %d SSD reads, off = %d; filter is not short-circuiting", on, off)
	}
	_ = FormatBloomAblation(points)
}

func TestRunBackendComparison(t *testing.T) {
	points, err := RunBackendComparison(512)
	if err != nil {
		t.Fatalf("RunBackendComparison: %v", err)
	}
	busy := map[string]int64{}
	for _, p := range points {
		busy[p.Kind.String()] = int64(p.DeviceBusy)
	}
	// Shape: disk index pays orders of magnitude more device time than
	// the flash designs; RAM-only pays the least.
	if busy["disk-index"] < 10*busy["shhc-hybrid"] {
		t.Fatalf("disk index busy %d not >> hybrid %d", busy["disk-index"], busy["shhc-hybrid"])
	}
	if busy["ram-only"] > busy["shhc-hybrid"] {
		t.Fatalf("ram-only busy %d above hybrid %d", busy["ram-only"], busy["shhc-hybrid"])
	}
	_ = FormatBackendComparison(points)
}

func TestRunVNodeSweep(t *testing.T) {
	points, err := RunVNodeSweep(20000, []int{1, 128})
	if err != nil {
		t.Fatalf("RunVNodeSweep: %v", err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	if points[1].MaxOverMin > points[0].MaxOverMin {
		t.Fatalf("more vnodes worsened keyspace balance: %.2f vs %.2f",
			points[1].MaxOverMin, points[0].MaxOverMin)
	}
	_ = FormatVNodeSweep(points)
}

func TestRunStripeSweep(t *testing.T) {
	points, err := RunStripeSweep(4, 20000, []int{1, 8})
	if err != nil {
		t.Fatalf("RunStripeSweep: %v", err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	for _, p := range points {
		if p.Throughput <= 0 {
			t.Fatalf("stripes=%d throughput = %f, want > 0", p.Stripes, p.Throughput)
		}
	}
	_ = FormatStripeSweep(points)
}
