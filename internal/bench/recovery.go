package bench

// ---------------------------------------------------------------------------
// Recovery benchmark: what the destage journal costs and what reopen pays.
//
// Two questions, one artifact (BENCH_recovery.json):
//
//   - the durability tax: write-back insert throughput with the journal on
//     (every eviction group-commit fsynced before it acks) versus off
//     (the pre-journal crash window), at several writer concurrencies —
//     group commit amortizes the fsync across concurrent evictors, so the
//     gap should narrow as writers grow;
//   - the recovery bill: node reopen time (journal replay into a fresh
//     on-disk hash table) as a function of how many dirty entries the
//     crash stranded in the buffer.
// ---------------------------------------------------------------------------

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"shhc/internal/core"
	"shhc/internal/device"
	"shhc/internal/fingerprint"
	"shhc/internal/hashdb"
	"shhc/internal/ring"
)

// RecoveryPoint is one cell of the recovery benchmark.
type RecoveryPoint struct {
	// Kind is "insert" (durability-tax cell) or "replay" (reopen cell).
	Kind    string `json:"kind"`
	Journal bool   `json:"journal"`
	// Insert cells: Ops inserts fed by Writers goroutines.
	Ops        int           `json:"ops,omitempty"`
	Writers    int           `json:"writers,omitempty"`
	Throughput float64       `json:"throughputOpsPerSec,omitempty"`
	Elapsed    time.Duration `json:"elapsedNanos,omitempty"`
	// Replay cells: DirtyEntries stranded in the buffer at the crash,
	// ReplayedEntries recovered, ReopenNanos the full NewNode (replay +
	// store writes + Bloom rebuild) cost.
	DirtyEntries    int           `json:"dirtyEntries,omitempty"`
	ReplayedEntries uint64        `json:"replayedEntries,omitempty"`
	ReopenNanos     time.Duration `json:"reopenNanos,omitempty"`
}

// RunRecoverySweep measures the journal's insert-throughput tax and the
// reopen/replay cost. ops <= 0 selects the default workload size.
func RunRecoverySweep(ops int) ([]RecoveryPoint, error) {
	if ops <= 0 {
		ops = 8192
	}
	dir, err := os.MkdirTemp("", "shhc-recovery-sweep")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var points []RecoveryPoint
	for _, writers := range []int{1, 4, 16} {
		for _, journal := range []bool{false, true} {
			p, err := runRecoveryInsertCell(dir, journal, ops, writers)
			if err != nil {
				return nil, fmt.Errorf("bench: recovery insert cell journal=%v writers=%d: %w", journal, writers, err)
			}
			points = append(points, p)
		}
	}
	for _, dirty := range []int{1024, 4096, 16384} {
		p, err := runRecoveryReplayCell(dir, dirty)
		if err != nil {
			return nil, fmt.Errorf("bench: recovery replay cell dirty=%d: %w", dirty, err)
		}
		points = append(points, p)
	}
	return points, nil
}

func runRecoveryInsertCell(dir string, journal bool, ops, writers int) (RecoveryPoint, error) {
	dev := device.New(device.SSD, device.Account)
	path := filepath.Join(dir, fmt.Sprintf("ins-%v-%d.shdb", journal, writers))
	db, err := hashdb.Create(path, hashdb.Options{ExpectedItems: ops, Device: dev})
	if err != nil {
		return RecoveryPoint{}, err
	}
	cfg := core.NodeConfig{
		ID:            ring.NodeID(fmt.Sprintf("rec-ins-%v-%d", journal, writers)),
		Store:         db,
		CacheSize:     256, // far below the key count: inserts evict and destage
		BloomExpected: 2 * ops,
		WriteBack:     true,
	}
	if journal {
		cfg.JournalPath = path + ".wal"
	}
	node, err := core.NewNode(cfg)
	if err != nil {
		db.Close()
		return RecoveryPoint{}, err
	}

	perWriter := ops / writers
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w * perWriter)
			for i := 0; i < perWriter; i++ {
				k := base + uint64(i)
				if _, err := node.LookupOrInsert(context.Background(), fingerprint.FromUint64(k), core.Value(k)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		node.Close()
		return RecoveryPoint{}, err
	default:
	}
	if err := node.Flush(); err != nil {
		node.Close()
		return RecoveryPoint{}, err
	}
	elapsed := time.Since(start)
	if err := node.Close(); err != nil {
		return RecoveryPoint{}, err
	}
	return RecoveryPoint{
		Kind:       "insert",
		Journal:    journal,
		Ops:        ops,
		Writers:    writers,
		Throughput: float64(ops) / elapsed.Seconds(),
		Elapsed:    elapsed,
	}, nil
}

func runRecoveryReplayCell(dir string, dirty int) (RecoveryPoint, error) {
	// Phase 1: strand exactly `dirty` entries in the journal — a stalled
	// destager (huge batch and interval) keeps every eviction buffered.
	const cache = 64
	jpath := filepath.Join(dir, fmt.Sprintf("replay-%d.wal", dirty))
	writer, err := core.NewNode(core.NodeConfig{
		ID:              ring.NodeID(fmt.Sprintf("rec-wal-%d", dirty)),
		Store:           hashdb.NewMemStore(nil),
		CacheSize:       cache,
		BloomExpected:   2 * dirty,
		WriteBack:       true,
		JournalPath:     jpath,
		DestageBatch:    1 << 30,
		DestageInterval: time.Hour,
		DestageQueue:    dirty + cache,
	})
	if err != nil {
		return RecoveryPoint{}, err
	}
	for i := 0; i < dirty+cache; i++ {
		if _, err := writer.LookupOrInsert(context.Background(), fingerprint.FromUint64(uint64(i)), core.Value(i)); err != nil {
			writer.Close()
			return RecoveryPoint{}, err
		}
	}
	snap, err := os.ReadFile(jpath)
	if err != nil {
		writer.Close()
		return RecoveryPoint{}, err
	}
	if err := writer.Close(); err != nil {
		return RecoveryPoint{}, err
	}

	// Phase 2: rebirth against a fresh on-disk table, paying replay's
	// batched store writes plus the Bloom rebuild — the real reopen path.
	crashJournal := filepath.Join(dir, fmt.Sprintf("replay-%d-crash.wal", dirty))
	if err := os.WriteFile(crashJournal, snap, 0o644); err != nil {
		return RecoveryPoint{}, err
	}
	dbPath := filepath.Join(dir, fmt.Sprintf("replay-%d.shdb", dirty))
	db, err := hashdb.Create(dbPath, hashdb.Options{ExpectedItems: dirty, Device: device.New(device.SSD, device.Account)})
	if err != nil {
		return RecoveryPoint{}, err
	}
	start := time.Now()
	reborn, err := core.NewNode(core.NodeConfig{
		ID:            ring.NodeID(fmt.Sprintf("rec-replay-%d", dirty)),
		Store:         db,
		CacheSize:     cache,
		BloomExpected: 2 * dirty,
		WriteBack:     true,
		JournalPath:   crashJournal,
	})
	if err != nil {
		db.Close()
		return RecoveryPoint{}, err
	}
	reopen := time.Since(start)
	st, err := reborn.Stats(context.Background())
	if err != nil {
		reborn.Close()
		return RecoveryPoint{}, err
	}
	if err := reborn.Close(); err != nil {
		return RecoveryPoint{}, err
	}
	if got, want := st.Recovery.JournalReplayed, uint64(dirty); got != want {
		return RecoveryPoint{}, fmt.Errorf("replay cell recovered %d entries, want %d", got, want)
	}
	return RecoveryPoint{
		Kind:            "replay",
		Journal:         true,
		DirtyEntries:    dirty,
		ReplayedEntries: st.Recovery.JournalReplayed,
		ReopenNanos:     reopen,
	}, nil
}

// FormatRecoverySweep renders the sweep as a text table.
func FormatRecoverySweep(points []RecoveryPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-8s %8s %10s %14s %12s %12s\n",
		"kind", "journal", "writers", "ops/dirty", "throughput/s", "elapsed", "reopen")
	for _, p := range points {
		switch p.Kind {
		case "insert":
			fmt.Fprintf(&b, "%-8s %-8v %8d %10d %14.0f %12v %12s\n",
				p.Kind, p.Journal, p.Writers, p.Ops, p.Throughput, p.Elapsed.Round(time.Millisecond), "-")
		case "replay":
			fmt.Fprintf(&b, "%-8s %-8v %8s %10d %14s %12s %12v\n",
				p.Kind, p.Journal, "-", p.DirtyEntries, "-", "-", p.ReopenNanos.Round(time.Microsecond))
		}
	}
	return b.String()
}

// EmitRecoveryJSON writes the sweep to path as the BENCH_recovery.json
// artifact.
func EmitRecoveryJSON(path string, points []RecoveryPoint) error {
	data, err := json.MarshalIndent(struct {
		Experiment string          `json:"experiment"`
		Points     []RecoveryPoint `json:"points"`
	}{Experiment: "recovery-journal", Points: points}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
