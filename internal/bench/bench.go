// Package bench is the experiment harness that regenerates every table and
// figure in the paper's evaluation, plus the ablations DESIGN.md calls out.
// cmd/shhc-bench drives it from the command line; the repository-root
// benchmarks drive it from `go test -bench`.
//
// Absolute numbers depend on the host; the harness exists to reproduce the
// *shape* of each result: which configuration wins, by roughly what factor,
// and where curves cross.
package bench

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"shhc/internal/core"
	"shhc/internal/device"
	"shhc/internal/fingerprint"
	"shhc/internal/hashdb"
	"shhc/internal/ring"
	"shhc/internal/rpc"
	"shhc/internal/trace"
)

// buildLocalCluster assembles an in-process cluster of n hybrid nodes with
// memory-backed stores charged at SSD rates (Account mode: fast but
// honestly metered).
func buildLocalCluster(n, cacheSize, expected int) (*core.Cluster, error) {
	backends := make([]core.Backend, 0, n)
	for i := 0; i < n; i++ {
		node, err := core.NewNode(core.NodeConfig{
			ID:            ring.NodeID(fmt.Sprintf("node-%02d", i)),
			Store:         hashdb.NewMemStore(device.New(device.SSD, device.Account)),
			CacheSize:     cacheSize,
			BloomExpected: expected,
		})
		if err != nil {
			closeBackends(backends)
			return nil, err
		}
		backends = append(backends, node)
	}
	return core.NewCluster(core.ClusterConfig{}, backends...)
}

func closeBackends(backends []core.Backend) {
	for _, b := range backends {
		b.Close()
	}
}

// tcpCluster is a cluster whose nodes are real TCP servers on loopback,
// reproducing the paper's testbed topology in one process.
type tcpCluster struct {
	cluster *core.Cluster
	servers []*rpc.Server
	nodes   []*core.Node
}

// buildTCPCluster starts n node servers on loopback and a cluster of RPC
// clients routing to them.
func buildTCPCluster(n, cacheSize, expected, connsPerNode int) (*tcpCluster, error) {
	tc := &tcpCluster{}
	backends := make([]core.Backend, 0, n)
	for i := 0; i < n; i++ {
		id := ring.NodeID(fmt.Sprintf("node-%02d", i))
		node, err := core.NewNode(core.NodeConfig{
			ID:            id,
			Store:         hashdb.NewMemStore(device.New(device.SSD, device.Account)),
			CacheSize:     cacheSize,
			BloomExpected: expected,
		})
		if err != nil {
			tc.Close()
			return nil, err
		}
		tc.nodes = append(tc.nodes, node)
		srv := rpc.NewServer(node, rpc.ServerConfig{})
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			tc.Close()
			return nil, err
		}
		tc.servers = append(tc.servers, srv)
		client, err := rpc.Dial(id, addr.String(), rpc.ClientConfig{Conns: connsPerNode})
		if err != nil {
			tc.Close()
			return nil, err
		}
		backends = append(backends, client)
	}
	cluster, err := core.NewCluster(core.ClusterConfig{}, backends...)
	if err != nil {
		tc.Close()
		return nil, err
	}
	tc.cluster = cluster
	return tc, nil
}

func (tc *tcpCluster) Close() {
	if tc.cluster != nil {
		tc.cluster.Close() // closes the rpc clients
	}
	for _, s := range tc.servers {
		s.Close()
	}
	for _, n := range tc.nodes {
		n.Close()
	}
}

// mixedWorkload generates the evaluation's "4 mixed workloads" stream at
// the given scale, block-interleaved to preserve per-stream locality.
func mixedWorkload(scale, blockSize int) *trace.Interleave {
	gens := make([]*trace.Generator, 0, 4)
	for _, spec := range trace.PaperWorkloads() {
		gens = append(gens, trace.NewGenerator(spec.Scaled(scale)))
	}
	return trace.NewInterleave(blockSize, gens...)
}

// drainInterleave collects up to limit fingerprints from the stream
// (limit <= 0 drains everything).
func drainInterleave(it *trace.Interleave, limit int) []fingerprint.Fingerprint {
	n := it.Remaining()
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]fingerprint.Fingerprint, 0, n)
	for len(out) < n {
		fp, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, fp)
	}
	return out
}

// runClients splits fps across `clients` goroutines, each submitting
// batches of batchSize to the cluster, and returns the wall-clock elapsed
// time — the Figure 5 measurement loop ("two separate clients ... each
// client holds a buffer to aggregate hash queries").
func runClients(cluster *core.Cluster, fps []fingerprint.Fingerprint, clients, batchSize int) (time.Duration, error) {
	if clients <= 0 {
		clients = 1
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	share := (len(fps) + clients - 1) / clients
	start := time.Now()
	for c := 0; c < clients; c++ {
		lo := c * share
		hi := lo + share
		if lo >= len(fps) {
			break
		}
		if hi > len(fps) {
			hi = len(fps)
		}
		wg.Add(1)
		go func(stream []fingerprint.Fingerprint) {
			defer wg.Done()
			pairs := make([]core.Pair, 0, batchSize)
			flush := func() error {
				if len(pairs) == 0 {
					return nil
				}
				_, err := cluster.BatchLookupOrInsert(context.Background(), pairs)
				pairs = pairs[:0]
				return err
			}
			for i, fp := range stream {
				pairs = append(pairs, core.Pair{FP: fp, Val: core.Value(i + 1)})
				if len(pairs) >= batchSize {
					if err := flush(); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
				}
			}
			if err := flush(); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(fps[lo:hi])
	}
	wg.Wait()
	elapsed := time.Since(start)
	return elapsed, firstErr
}

// table renders aligned text tables for reports.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
