// Package sim is the discrete-event simulator behind the paper's Figure 1
// motivation experiment ("we developed a simulator and used it to compare
// the throughput of a single hash server to that of a clustered approach").
//
// The model: K fingerprint queries arrive open-loop at a configured rate
// and hash uniformly onto N hash-server queues (one per cluster node). Each
// server answers a query from RAM with the configured cache-hit ratio and
// from its index device (SSD) otherwise, serving FIFO. The reported metric
// is the paper's: total execution time until the last of the K queries
// completes, for a given (rate, N) point. Below saturation the arrival
// window K/rate dominates; past a node's service capacity the queue grows
// and execution time approaches K * E[service] / N — which is exactly the
// decreasing-in-N family of curves in Figure 1.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"shhc/internal/metrics"
)

// Config parameterizes one simulation run.
type Config struct {
	// Nodes is the cluster size (Figure 1 sweeps 1, 2, 4, 8, 16).
	Nodes int
	// Requests is the number of queries to inject (paper: 100,000).
	Requests int
	// RatePerSec is the open-loop arrival rate over the whole cluster.
	RatePerSec float64
	// CacheHitRatio is the fraction of queries answered from RAM.
	// Default 0.3 (cold-ish store, matching the cold nodes of §IV).
	CacheHitRatio float64
	// HitTime is the service time of a RAM hit. Default 2µs.
	HitTime time.Duration
	// MissTime is the service time of an SSD-backed lookup. Default 60µs
	// (one flash random read) plus per-request CPU overhead.
	MissTime time.Duration
	// Overhead is per-request CPU/network processing added to every
	// query. Default 10µs.
	Overhead time.Duration
	// Deterministic uses fixed service times instead of exponential.
	Deterministic bool
	// BatchSize groups queries per request (paper batch mode): a batch
	// pays Overhead once plus the per-query hit/miss service of each
	// member, so larger batches amortize the fixed cost. Default 1.
	BatchSize int
	// Seed drives arrival jitter, routing, and service sampling.
	Seed int64
}

func (c *Config) fill() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("sim: Nodes must be positive, got %d", c.Nodes)
	}
	if c.Requests <= 0 {
		return fmt.Errorf("sim: Requests must be positive, got %d", c.Requests)
	}
	if c.RatePerSec <= 0 {
		return fmt.Errorf("sim: RatePerSec must be positive, got %v", c.RatePerSec)
	}
	if c.CacheHitRatio < 0 || c.CacheHitRatio > 1 {
		return fmt.Errorf("sim: CacheHitRatio must be in [0,1], got %v", c.CacheHitRatio)
	}
	if c.CacheHitRatio == 0 {
		c.CacheHitRatio = 0.3
	}
	if c.HitTime <= 0 {
		c.HitTime = 2 * time.Microsecond
	}
	if c.MissTime <= 0 {
		c.MissTime = 60 * time.Microsecond
	}
	if c.Overhead <= 0 {
		c.Overhead = 10 * time.Microsecond
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 1
	}
	return nil
}

// Result summarizes one run.
type Result struct {
	Config Config
	// ExecutionTime is the Figure 1 metric: time from first arrival to
	// last completion.
	ExecutionTime time.Duration
	// MeanLatency and P99Latency are per-query response times
	// (queueing + service).
	MeanLatency time.Duration
	P99Latency  time.Duration
	// ThroughputPerSec is Requests / ExecutionTime.
	ThroughputPerSec float64
	// Utilization is mean busy-fraction across nodes.
	Utilization float64
}

// event is either an arrival or a departure in the event heap.
type event struct {
	at   time.Duration
	kind eventKind
	node int
}

type eventKind int

const (
	evArrival eventKind = iota + 1
	evDeparture
)

type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Run executes the simulation to completion.
func Run(cfg Config) (Result, error) {
	if err := cfg.fill(); err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x464947_31)) // "FIG1"

	// One arrival event is one request: a single query, or a batch of
	// BatchSize queries arriving together at a proportionally lower
	// request rate (the offered query rate stays RatePerSec).
	totalRequests := (cfg.Requests + cfg.BatchSize - 1) / cfg.BatchSize
	interArrival := time.Duration(float64(time.Second) * float64(cfg.BatchSize) / cfg.RatePerSec)

	type nodeState struct {
		queue     []time.Duration // arrival times of queued queries
		busy      bool
		busySince time.Duration
		busyTotal time.Duration
	}
	nodes := make([]nodeState, cfg.Nodes)

	sample := func(mean time.Duration) time.Duration {
		if cfg.Deterministic {
			return mean
		}
		return time.Duration(rng.ExpFloat64() * float64(mean))
	}
	// serviceTime returns the cost of one request: the fixed overhead
	// paid once plus per-query device time for each batched query.
	serviceTime := func() time.Duration {
		st := cfg.Overhead
		for q := 0; q < cfg.BatchSize; q++ {
			if rng.Float64() < cfg.CacheHitRatio {
				st += sample(cfg.HitTime)
			} else {
				st += sample(cfg.MissTime)
			}
		}
		return st
	}

	var (
		h         eventHeap
		now       time.Duration
		arrivals  int
		completed int
		latHist   = metrics.NewHistogram(time.Microsecond, 48)
		lastDone  time.Duration
	)
	heap.Push(&h, event{at: 0, kind: evArrival, node: rng.Intn(cfg.Nodes)})
	arrivals = 1

	startService := func(n int, arrivedAt time.Duration) {
		st := serviceTime()
		nodes[n].busy = true
		nodes[n].busySince = now
		done := now + st
		heap.Push(&h, event{at: done, kind: evDeparture, node: n})
		latHist.Observe(done - arrivedAt)
	}

	for completed < totalRequests && len(h) > 0 {
		e := heap.Pop(&h).(event)
		now = e.at
		switch e.kind {
		case evArrival:
			n := &nodes[e.node]
			if n.busy {
				n.queue = append(n.queue, now)
			} else {
				startService(e.node, now)
			}
			if arrivals < totalRequests {
				next := now + jitter(rng, interArrival)
				heap.Push(&h, event{at: next, kind: evArrival, node: rng.Intn(cfg.Nodes)})
				arrivals++
			}
		case evDeparture:
			n := &nodes[e.node]
			n.busy = false
			n.busyTotal += now - n.busySince
			completed++
			lastDone = now
			if len(n.queue) > 0 {
				arrivedAt := n.queue[0]
				n.queue = n.queue[1:]
				startService(e.node, arrivedAt)
			}
		}
	}

	sum := latHist.Summarize()
	res := Result{
		Config:        cfg,
		ExecutionTime: lastDone,
		MeanLatency:   sum.Mean,
		P99Latency:    sum.P99,
	}
	if lastDone > 0 {
		res.ThroughputPerSec = float64(cfg.Requests) / lastDone.Seconds()
		var busy time.Duration
		for i := range nodes {
			busy += nodes[i].busyTotal
		}
		res.Utilization = float64(busy) / (float64(lastDone) * float64(cfg.Nodes))
	}
	return res, nil
}

// jitter draws an exponential inter-arrival time with the given mean
// (Poisson arrivals), the standard open-loop injection model.
func jitter(rng *rand.Rand, mean time.Duration) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(mean))
}

// SweepPoint is one (rate, nodes) cell of the Figure 1 surface.
type SweepPoint struct {
	Nodes      int
	RatePerSec float64
	Result     Result
}

// Sweep runs the full Figure 1 grid: every rate for every cluster size.
func Sweep(base Config, nodeCounts []int, rates []float64) ([]SweepPoint, error) {
	points := make([]SweepPoint, 0, len(nodeCounts)*len(rates))
	for _, n := range nodeCounts {
		for _, r := range rates {
			cfg := base
			cfg.Nodes = n
			cfg.RatePerSec = r
			res, err := Run(cfg)
			if err != nil {
				return nil, err
			}
			points = append(points, SweepPoint{Nodes: n, RatePerSec: r, Result: res})
		}
	}
	return points, nil
}
