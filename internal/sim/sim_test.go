package sim

import (
	"testing"
	"time"
)

func baseConfig() Config {
	return Config{
		Nodes:         1,
		Requests:      20000,
		RatePerSec:    50000,
		CacheHitRatio: 0.3,
		Seed:          42,
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "zero nodes", mutate: func(c *Config) { c.Nodes = 0 }},
		{name: "zero requests", mutate: func(c *Config) { c.Requests = 0 }},
		{name: "zero rate", mutate: func(c *Config) { c.RatePerSec = 0 }},
		{name: "bad hit ratio", mutate: func(c *Config) { c.CacheHitRatio = 1.5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := baseConfig()
			tt.mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Fatal("Run accepted invalid config")
			}
		})
	}
}

func TestAllRequestsComplete(t *testing.T) {
	cfg := baseConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.ExecutionTime <= 0 {
		t.Fatal("ExecutionTime = 0")
	}
	if res.ThroughputPerSec <= 0 {
		t.Fatal("ThroughputPerSec = 0")
	}
	if res.Utilization <= 0 || res.Utilization > 1.0001 {
		t.Fatalf("Utilization = %v, out of (0,1]", res.Utilization)
	}
}

func TestDeterministicSeeds(t *testing.T) {
	cfg := baseConfig()
	a, _ := Run(cfg)
	b, _ := Run(cfg)
	if a.ExecutionTime != b.ExecutionTime {
		t.Fatalf("same seed, different results: %v vs %v", a.ExecutionTime, b.ExecutionTime)
	}
	cfg.Seed = 43
	c, _ := Run(cfg)
	if a.ExecutionTime == c.ExecutionTime {
		t.Fatal("different seeds produced identical execution times (suspicious)")
	}
}

func TestMoreNodesFasterAtSaturation(t *testing.T) {
	// Figure 1's central claim: at a rate that saturates every cluster
	// size, execution time strictly decreases as nodes are added. (At
	// rates below a configuration's capacity the curves converge to the
	// arrival window K/rate, which Figure 1 also shows.)
	prev := time.Duration(1<<62 - 1)
	for _, nodes := range []int{1, 2, 4, 8, 16} {
		cfg := baseConfig()
		cfg.Nodes = nodes
		cfg.RatePerSec = 1e6 // above even 16-node capacity (~300k/s)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run(%d nodes): %v", nodes, err)
		}
		if res.ExecutionTime >= prev {
			t.Fatalf("%d nodes took %v, not faster than previous %v", nodes, res.ExecutionTime, prev)
		}
		prev = res.ExecutionTime
	}
}

func TestArrivalBoundAtLowRate(t *testing.T) {
	// Below saturation, execution time is dominated by the arrival
	// window K/rate regardless of cluster size.
	cfg := baseConfig()
	cfg.Nodes = 16
	cfg.RatePerSec = 10000
	cfg.Requests = 10000 // 1 second of arrivals
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := time.Second
	if res.ExecutionTime < want*8/10 || res.ExecutionTime > want*13/10 {
		t.Fatalf("ExecutionTime = %v, want about %v (arrival-bound)", res.ExecutionTime, want)
	}
}

func TestSaturatedServerIsServiceBound(t *testing.T) {
	// One node, deterministic service, rate far above capacity:
	// makespan approaches Requests * serviceTime.
	cfg := Config{
		Nodes:         1,
		Requests:      10000,
		RatePerSec:    1e7,
		CacheHitRatio: 0.5,
		HitTime:       10 * time.Microsecond,
		MissTime:      10 * time.Microsecond,
		Overhead:      10 * time.Microsecond,
		Deterministic: true,
		Seed:          1,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := 10000 * 20 * time.Microsecond // service = overhead + 10us
	if res.ExecutionTime < want*95/100 || res.ExecutionTime > want*105/100 {
		t.Fatalf("ExecutionTime = %v, want about %v (service-bound)", res.ExecutionTime, want)
	}
	if res.Utilization < 0.95 {
		t.Fatalf("Utilization = %v, want ~1 at saturation", res.Utilization)
	}
}

func TestHigherHitRatioFaster(t *testing.T) {
	cold := baseConfig()
	cold.RatePerSec = 200000 // saturating
	cold.CacheHitRatio = 0.05
	warm := cold
	warm.CacheHitRatio = 0.95

	rc, err := Run(cold)
	if err != nil {
		t.Fatalf("Run(cold): %v", err)
	}
	rw, err := Run(warm)
	if err != nil {
		t.Fatalf("Run(warm): %v", err)
	}
	if rw.ExecutionTime >= rc.ExecutionTime {
		t.Fatalf("warm cache (%v) not faster than cold (%v)", rw.ExecutionTime, rc.ExecutionTime)
	}
}

func TestBatchingRaisesSaturatedThroughput(t *testing.T) {
	// Figure 5's mechanism in the queueing model: at a saturating query
	// rate, batching amortizes per-request overhead, so the same node
	// count completes the burst faster. Make overhead dominate (as the
	// network does in the paper) to see the batch effect clearly.
	base := Config{
		Nodes:         2,
		Requests:      50000,
		RatePerSec:    1e7, // saturating: makespan is service-bound
		CacheHitRatio: 0.3,
		HitTime:       2 * time.Microsecond,
		MissTime:      20 * time.Microsecond,
		Overhead:      100 * time.Microsecond, // per-request, amortized by batching
		Seed:          9,
	}
	single := base
	single.BatchSize = 1
	batched := base
	batched.BatchSize = 128

	rs, err := Run(single)
	if err != nil {
		t.Fatalf("Run(single): %v", err)
	}
	rb, err := Run(batched)
	if err != nil {
		t.Fatalf("Run(batched): %v", err)
	}
	if rb.ThroughputPerSec < 4*rs.ThroughputPerSec {
		t.Fatalf("batched throughput %.0f not >> single %.0f", rb.ThroughputPerSec, rs.ThroughputPerSec)
	}
}

func TestBatchSizeLargerThanRequests(t *testing.T) {
	cfg := baseConfig()
	cfg.Requests = 10
	cfg.BatchSize = 2048 // one partial batch
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.ExecutionTime <= 0 {
		t.Fatal("no work simulated")
	}
}

func TestLatencyPercentilesOrdered(t *testing.T) {
	cfg := baseConfig()
	cfg.RatePerSec = 30000
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.P99Latency < res.MeanLatency {
		t.Fatalf("P99 (%v) < mean (%v)", res.P99Latency, res.MeanLatency)
	}
}

func TestSweepGrid(t *testing.T) {
	base := baseConfig()
	base.Requests = 5000
	points, err := Sweep(base, []int{1, 2, 4}, []float64{20000, 60000})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(points) != 6 {
		t.Fatalf("got %d points, want 6", len(points))
	}
	for _, p := range points {
		if p.Result.ExecutionTime <= 0 {
			t.Fatalf("point %+v has zero execution time", p)
		}
	}
}
