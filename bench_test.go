// Benchmarks regenerating the paper's evaluation. One benchmark family per
// table/figure, plus the design-choice ablations from DESIGN.md §3.
//
//	go test -bench=. -benchmem
//
// Shape expectations (see EXPERIMENTS.md for measured numbers):
//   - Figure1: execution time decreases with cluster size at saturating
//     rates and converges to the arrival window below saturation.
//   - Table1: measured redundancy/distance match the paper's trace stats.
//   - Figure5: batched throughput is roughly an order of magnitude above
//     unbatched and scales with node count.
//   - Figure6: each of 4 nodes stores ~25% of hash entries.
package shhc

import (
	"fmt"
	"testing"

	"shhc/internal/bench"
	"shhc/internal/trace"
)

// BenchmarkFigure1 runs the Figure 1 simulator at the paper's operating
// points: 100k requests, rates 10k..100k, nodes 1..16. Each iteration is
// one full sweep cell.
func BenchmarkFigure1(b *testing.B) {
	for _, nodes := range []int{1, 2, 4, 8, 16} {
		for _, rate := range []float64{20000, 100000} {
			b.Run(fmt.Sprintf("nodes=%d/rate=%.0f", nodes, rate), func(b *testing.B) {
				var lastExec int64
				for i := 0; i < b.N; i++ {
					points, err := bench.RunFigure1(bench.Figure1Config{
						Requests:   100000,
						Rates:      []float64{rate},
						NodeCounts: []int{nodes},
						Seed:       int64(i),
					})
					if err != nil {
						b.Fatal(err)
					}
					lastExec = points[0].Result.ExecutionTime.Microseconds()
				}
				b.ReportMetric(float64(lastExec), "sim_exec_us")
			})
		}
	}
}

// BenchmarkTable1 generates and re-measures each Table I workload at 1/64
// scale. The reported metrics are the workload statistics themselves.
func BenchmarkTable1(b *testing.B) {
	for _, spec := range trace.PaperWorkloads() {
		spec := spec.Scaled(64)
		b.Run(spec.Name, func(b *testing.B) {
			var st trace.Stats
			for i := 0; i < b.N; i++ {
				g := trace.NewGenerator(spec)
				an := trace.NewAnalyzer(spec.Name)
				for {
					fp, ok := g.Next()
					if !ok {
						break
					}
					an.Observe(fp)
				}
				st = an.Stats()
			}
			b.ReportMetric(st.PctRedundant*100, "pct_redundant")
			b.ReportMetric(st.MeanDistance, "mean_distance")
			b.ReportMetric(float64(st.Fingerprints)/b.Elapsed().Seconds()*float64(b.N), "fp/s")
		})
	}
}

// BenchmarkFigure5 measures cluster throughput per (nodes, batch) cell over
// real loopback TCP with two concurrent clients, each iteration against a
// cold cluster (as in the paper).
func BenchmarkFigure5(b *testing.B) {
	for _, nodes := range []int{1, 2, 3, 4} {
		for _, batch := range []int{1, 128, 2048} {
			b.Run(fmt.Sprintf("nodes=%d/batch=%d", nodes, batch), func(b *testing.B) {
				fingerprints := 30000
				if batch == 1 {
					fingerprints = 6000 // per-RPC mode is ~30x slower
				}
				var throughput float64
				for i := 0; i < b.N; i++ {
					points, err := bench.RunFigure5(bench.Figure5Config{
						NodeCounts:   []int{nodes},
						BatchSizes:   []int{batch},
						Fingerprints: fingerprints,
						Scale:        64,
						UseTCP:       true,
					})
					if err != nil {
						b.Fatal(err)
					}
					throughput = points[0].Throughput
				}
				b.ReportMetric(throughput, "chunks/s")
			})
		}
	}
}

// BenchmarkFigure6 inserts the mixed workloads into a 4-node cluster and
// reports the worst node's deviation from the ideal 25% share.
func BenchmarkFigure6(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		points, err := bench.RunFigure6(bench.Figure6Config{Nodes: 4, Scale: 128})
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, p := range points {
			dev := p.Share - 0.25
			if dev < 0 {
				dev = -dev
			}
			if dev > worst {
				worst = dev
			}
		}
	}
	b.ReportMetric(worst*100, "worst_dev_pct")
}

// BenchmarkAblationBatchSweep sweeps batch sizes on a 4-node TCP cluster
// (the latency/throughput tradeoff of paper §V).
func BenchmarkAblationBatchSweep(b *testing.B) {
	for _, batch := range []int{1, 32, 512} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			fingerprints := 20000
			if batch == 1 {
				fingerprints = 4000
			}
			var throughput float64
			for i := 0; i < b.N; i++ {
				points, err := bench.RunBatchSweep(4, fingerprints, 128, []int{batch})
				if err != nil {
					b.Fatal(err)
				}
				throughput = points[0].Throughput
			}
			b.ReportMetric(throughput, "chunks/s")
		})
	}
}

// BenchmarkAblationCacheSize sweeps the RAM LRU size on the Mail Server
// workload (85% redundant: the cache's best case).
func BenchmarkAblationCacheSize(b *testing.B) {
	for _, size := range []int{1 << 8, 1 << 12, 1 << 16} {
		b.Run(fmt.Sprintf("cache=%d", size), func(b *testing.B) {
			var hitRate float64
			for i := 0; i < b.N; i++ {
				points, err := bench.RunCacheSweep(128, []int{size})
				if err != nil {
					b.Fatal(err)
				}
				hitRate = points[0].HitRate
			}
			b.ReportMetric(hitRate*100, "hit_pct")
		})
	}
}

// BenchmarkAblationBloom compares SSD reads with the Bloom filter on and
// off on the Web Server workload (82% unique: the filter's best case).
func BenchmarkAblationBloom(b *testing.B) {
	for _, enabled := range []bool{true, false} {
		b.Run(fmt.Sprintf("bloom=%v", enabled), func(b *testing.B) {
			var reads int64
			for i := 0; i < b.N; i++ {
				points, err := bench.RunBloomAblation(128)
				if err != nil {
					b.Fatal(err)
				}
				for _, p := range points {
					if p.Bloom == enabled {
						reads = p.SSDReads
					}
				}
			}
			b.ReportMetric(float64(reads), "ssd_reads")
		})
	}
}

// BenchmarkAblationBackends compares index designs (SHHC hybrid,
// ChunkStash-like, HDD index, RAM-only) by modeled device time on the Home
// Dir workload.
func BenchmarkAblationBackends(b *testing.B) {
	var results []bench.BackendPoint
	for i := 0; i < b.N; i++ {
		var err error
		results, err = bench.RunBackendComparison(128)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range results {
		b.ReportMetric(float64(p.DeviceBusy.Milliseconds()), p.Kind.String()+"_busy_ms")
	}
}

// BenchmarkAblationVNodes measures ring balance vs virtual-node count.
func BenchmarkAblationVNodes(b *testing.B) {
	for _, vn := range []int{1, 16, 128} {
		b.Run(fmt.Sprintf("vnodes=%d", vn), func(b *testing.B) {
			var spread float64
			for i := 0; i < b.N; i++ {
				points, err := bench.RunVNodeSweep(100000, []int{vn})
				if err != nil {
					b.Fatal(err)
				}
				spread = points[0].EntrySpread
			}
			b.ReportMetric(spread, "entries_max_over_min")
		})
	}
}
