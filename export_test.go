package shhc

import "shhc/internal/hashdb"

// newMemStoreForTest exposes an in-memory store to facade tests without
// making hashdb part of the public API surface.
func newMemStoreForTest() hashdb.Store { return hashdb.NewMemStore(nil) }
