// Command shhc-client is the backup client: it chunks a file, asks the
// front-end which chunks are new, uploads only those, and can restore a
// stream from a saved manifest.
//
// It can also probe a hash node directly over the multiplexed RPC
// transport (bypassing the front-end), reporting the negotiated protocol
// version and the node's transport counters — handy for checking that a
// deployment actually negotiated streams and credit flow control.
//
// Examples:
//
//	shhc-client -front http://127.0.0.1:8080 -backup photos.tar -manifest photos.manifest
//	shhc-client -front http://127.0.0.1:8080 -restore photos.manifest -out photos.tar
//	shhc-client -probe node-00=127.0.0.1:7001
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"shhc/internal/backup"
	"shhc/internal/fingerprint"
	"shhc/internal/ring"
	"shhc/internal/rpc"
	"shhc/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "shhc-client:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		front     = flag.String("front", "http://127.0.0.1:8080", "front-end base URL")
		backupArg = flag.String("backup", "", "file to back up")
		manifest  = flag.String("manifest", "", "manifest path (written on backup, read on restore)")
		restore   = flag.String("restore", "", "manifest to restore from")
		out       = flag.String("out", "", "output path for restore")
		chunkSize = flag.Int("chunk", 4096, "fixed chunk size in bytes (0 = content-defined)")
		batch     = flag.Int("batch", 2048, "fingerprints per plan request")
		timeout   = flag.Duration("timeout", 0, "overall run deadline (0 = none)")
		probe     = flag.String("probe", "", "probe a hash node directly over RPC (id=host:port): ping, one round-trip per stream, transport stats")
	)
	flag.Parse()

	// Ctrl-C (or a deadline from -timeout) cancels the run: in-flight plan
	// and upload requests abort instead of holding the front-end's
	// flight-table slots.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *probe != "" {
		return probeNode(ctx, *probe)
	}

	client, err := backup.New(backup.Config{FrontURL: *front, ChunkSize: *chunkSize, PlanBatch: *batch})
	if err != nil {
		return err
	}

	switch {
	case *backupArg != "":
		report, err := client.BackupFile(ctx, *backupArg)
		if err != nil {
			return err
		}
		fmt.Println(report)
		if *manifest != "" {
			if err := backup.SaveManifest(report.Manifest, *manifest); err != nil {
				return err
			}
			fmt.Printf("manifest saved to %s\n", *manifest)
		}
		return nil

	case *restore != "":
		if *out == "" {
			return fmt.Errorf("-restore requires -out")
		}
		m, err := backup.LoadManifest(*restore)
		if err != nil {
			return err
		}
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("create %s: %w", *out, err)
		}
		if err := client.Restore(ctx, m, f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("restored %d chunks (%d bytes) to %s\n", len(m.Chunks), m.Bytes, *out)
		return nil
	}
	return fmt.Errorf("nothing to do: pass -backup FILE, -restore MANIFEST, or -probe id=host:port")
}

// probeNode dials a hash node's RPC port directly, exercises a few
// streams, and prints the negotiated transport's vitals.
func probeNode(ctx context.Context, target string) error {
	id, hostport, ok := strings.Cut(strings.TrimSpace(target), "=")
	if !ok {
		return fmt.Errorf("bad -probe target %q (want id=host:port)", target)
	}
	client, err := rpc.Dial(ring.NodeID(id), hostport, rpc.ClientConfig{Conns: 1, Timeout: 10 * time.Second})
	if err != nil {
		return err
	}
	defer client.Close()

	start := time.Now()
	if err := client.Ping(ctx); err != nil {
		return fmt.Errorf("ping: %w", err)
	}
	rtt := time.Since(start)
	fmt.Printf("node %s at %s: protocol v%d, ping %v\n", id, hostport, client.Version(), rtt.Round(time.Microsecond))

	// One read-only round trip per stream handle: proves per-stream
	// traffic flows (and, below protocol 5, that the legacy path serves
	// the same handles).
	const streams = 4
	for i := 0; i < streams; i++ {
		s := client.OpenStream()
		if _, err := s.Lookup(ctx, fingerprint.FromUint64(uint64(i)+1)); err != nil {
			return fmt.Errorf("stream %d lookup: %w", s.Stream(), err)
		}
	}

	st, err := client.Stats(ctx)
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	if client.Version() >= wire.Version5 {
		fmt.Printf("transport: %d streams open, %d credit stalls, %d bytes in flight, %d window updates, %d redirects issued\n",
			st.Transport.StreamsOpen, st.Transport.CreditStalls, st.Transport.BytesInFlight,
			st.Transport.WindowUpdates, st.Transport.RedirectsIssued)
	} else {
		fmt.Println("transport: legacy single-stream path (peer predates protocol 5); no transport counters")
	}
	fmt.Printf("index: %d entries, %d lookups served\n", st.StoreEntries, st.Lookups)
	return nil
}
