// Command shhc-client is the backup client: it chunks a file, asks the
// front-end which chunks are new, uploads only those, and can restore a
// stream from a saved manifest.
//
// Examples:
//
//	shhc-client -front http://127.0.0.1:8080 -backup photos.tar -manifest photos.manifest
//	shhc-client -front http://127.0.0.1:8080 -restore photos.manifest -out photos.tar
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"shhc/internal/backup"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "shhc-client:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		front     = flag.String("front", "http://127.0.0.1:8080", "front-end base URL")
		backupArg = flag.String("backup", "", "file to back up")
		manifest  = flag.String("manifest", "", "manifest path (written on backup, read on restore)")
		restore   = flag.String("restore", "", "manifest to restore from")
		out       = flag.String("out", "", "output path for restore")
		chunkSize = flag.Int("chunk", 4096, "fixed chunk size in bytes (0 = content-defined)")
		batch     = flag.Int("batch", 2048, "fingerprints per plan request")
		timeout   = flag.Duration("timeout", 0, "overall run deadline (0 = none)")
	)
	flag.Parse()

	// Ctrl-C (or a deadline from -timeout) cancels the run: in-flight plan
	// and upload requests abort instead of holding the front-end's
	// flight-table slots.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	client, err := backup.New(backup.Config{FrontURL: *front, ChunkSize: *chunkSize, PlanBatch: *batch})
	if err != nil {
		return err
	}

	switch {
	case *backupArg != "":
		report, err := client.BackupFile(ctx, *backupArg)
		if err != nil {
			return err
		}
		fmt.Println(report)
		if *manifest != "" {
			if err := backup.SaveManifest(report.Manifest, *manifest); err != nil {
				return err
			}
			fmt.Printf("manifest saved to %s\n", *manifest)
		}
		return nil

	case *restore != "":
		if *out == "" {
			return fmt.Errorf("-restore requires -out")
		}
		m, err := backup.LoadManifest(*restore)
		if err != nil {
			return err
		}
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("create %s: %w", *out, err)
		}
		if err := client.Restore(ctx, m, f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("restored %d chunks (%d bytes) to %s\n", len(m.Chunks), m.Bytes, *out)
		return nil
	}
	return fmt.Errorf("nothing to do: pass -backup FILE or -restore MANIFEST")
}
