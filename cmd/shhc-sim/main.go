// Command shhc-sim runs the Figure 1 discrete-event simulation: execution
// time for a burst of fingerprint lookups across cluster sizes and offered
// rates.
//
// Example:
//
//	shhc-sim -requests 100000 -nodes 1,2,4,8,16 -rates 10000,20000,40000,60000,80000,100000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"shhc/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "shhc-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		requests = flag.Int("requests", 100000, "lookups per run (paper: 100000)")
		nodes    = flag.String("nodes", "1,2,4,8,16", "comma-separated cluster sizes")
		rates    = flag.String("rates", "10000,20000,40000,60000,80000,100000", "comma-separated offered rates (req/s)")
		seed     = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	nodeCounts, err := parseInts(*nodes)
	if err != nil {
		return fmt.Errorf("-nodes: %w", err)
	}
	rateList, err := parseFloats(*rates)
	if err != nil {
		return fmt.Errorf("-rates: %w", err)
	}

	points, err := bench.RunFigure1(bench.Figure1Config{
		Requests:   *requests,
		NodeCounts: nodeCounts,
		Rates:      rateList,
		Seed:       *seed,
	})
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatFigure1(points))
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
