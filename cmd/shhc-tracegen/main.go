// Command shhc-tracegen generates the paper's Table I fingerprint
// workloads (or custom ones) as .shtr trace files, printing the measured
// statistics for comparison with the paper.
//
// Examples:
//
//	shhc-tracegen -out traces/ -scale 16
//	shhc-tracegen -out traces/ -workload "Mail Server" -scale 64
//	shhc-tracegen -out traces/ -custom -count 1000000 -redundant 0.5 -distance 20000
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"shhc/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "shhc-tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out       = flag.String("out", "traces", "output directory")
		workload  = flag.String("workload", "", "generate only this Table I workload (default: all four)")
		scale     = flag.Int("scale", 16, "divide workload length and distance by this factor")
		custom    = flag.Bool("custom", false, "generate a custom workload instead")
		count     = flag.Int("count", 1000000, "custom: fingerprint count")
		redundant = flag.Float64("redundant", 0.3, "custom: duplicate fraction [0,1)")
		distance  = flag.Int("distance", 10000, "custom: mean reuse distance")
		chunkSize = flag.Int("chunksize", trace.ChunkSize4K, "custom: chunk size in bytes")
		seed      = flag.Int64("seed", 1, "custom: generator seed")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return fmt.Errorf("create %s: %w", *out, err)
	}

	var specs []trace.Spec
	switch {
	case *custom:
		specs = []trace.Spec{{
			Name:         "custom",
			Fingerprints: *count,
			PctRedundant: *redundant,
			Distance:     *distance,
			ChunkSize:    *chunkSize,
			Seed:         *seed,
		}}
	case *workload != "":
		for _, spec := range trace.PaperWorkloads() {
			if strings.EqualFold(spec.Name, *workload) {
				specs = []trace.Spec{spec.Scaled(*scale)}
			}
		}
		if len(specs) == 0 {
			return fmt.Errorf("unknown workload %q (want one of: Web Server, Home Dir, Mail Server, Time machine)", *workload)
		}
	default:
		for _, spec := range trace.PaperWorkloads() {
			specs = append(specs, spec.Scaled(*scale))
		}
	}

	for _, spec := range specs {
		name := strings.ToLower(strings.ReplaceAll(spec.Name, " ", "-"))
		name = strings.Map(func(r rune) rune {
			switch r {
			case '(', ')', '/':
				return -1
			}
			return r
		}, name)
		path := filepath.Join(*out, name+".shtr")
		stats, err := trace.WriteSpec(path, spec)
		if err != nil {
			return err
		}
		fmt.Printf("%s -> %s\n  %s\n", spec.Name, path, stats)
	}
	return nil
}
