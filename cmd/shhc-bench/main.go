// Command shhc-bench regenerates the paper's evaluation: Figure 1 (sim
// sweep), Table I (workload stats), Figure 5 (cluster throughput), Figure 6
// (load balance), and the design-choice ablations.
//
// Examples:
//
//	shhc-bench                     # full suite, paper-shaped parameters
//	shhc-bench -run fig5 -scale 64 -fps 100000
//	shhc-bench -run ablations
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"shhc/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "shhc-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		runSel = flag.String("run", "all", "experiments: all|fig1|table1|fig5|fig6|ablations|async|writes|recovery|hotpath|transport|growth (comma-separated)")
		scale  = flag.Int("scale", 64, "workload scale divisor for cluster experiments")
		t1     = flag.Int("table1-scale", 16, "workload scale divisor for Table I stats")
		fps    = flag.Int("fps", 100000, "fingerprints per Figure 5 cell")
		outPth = flag.String("out", "", "also write the report to this file")
		wrOut  = flag.String("writes-out", "BENCH_writes.json", "write the write-path ablation results to this JSON file (empty disables)")
		recOut = flag.String("recovery-out", "BENCH_recovery.json", "write the recovery benchmark results to this JSON file (empty disables)")
		hpOut  = flag.String("hotpath-out", "BENCH_hotpath.json", "write the hot-path ablation results to this JSON file (empty disables)")
		trOut  = flag.String("transport-out", "BENCH_transport.json", "write the mux transport benchmark results to this JSON file (empty disables)")
		trCli  = flag.Int("transport-clients", 10000, "concurrent logical clients for the transport scale scenario")
		trConn = flag.Int("transport-conns", 16, "TCP connections for the transport scale scenario (max 16)")
		grExp  = flag.Int("growth-expected", 0, "create-time ExpectedItems for the growth benchmark (0 selects the default)")
		grOut  = flag.String("growth-out", "BENCH_growth.json", "write the online-growth benchmark results to this JSON file (empty disables)")
	)
	flag.Parse()

	var out io.Writer = os.Stdout
	var file *os.File
	if *outPth != "" {
		f, err := os.Create(*outPth)
		if err != nil {
			return fmt.Errorf("create %s: %w", *outPth, err)
		}
		file = f
		out = io.MultiWriter(os.Stdout, f)
	}

	selected := map[string]bool{}
	for _, s := range strings.Split(*runSel, ",") {
		selected[strings.TrimSpace(s)] = true
	}
	want := func(name string) bool { return selected["all"] || selected[name] }

	section := func(title string) {
		fmt.Fprintf(out, "\n================ %s ================\n", title)
	}

	if want("fig1") {
		section("Figure 1 (simulator)")
		start := time.Now()
		points, err := bench.RunFigure1(bench.Figure1Config{})
		if err != nil {
			return err
		}
		fmt.Fprint(out, bench.FormatFigure1(points))
		fmt.Fprintf(out, "(%v)\n", time.Since(start).Round(time.Millisecond))
	}

	if want("table1") {
		section("Table I (workload characteristics)")
		start := time.Now()
		rows, err := bench.RunTable1(bench.Table1Config{Scale: *t1})
		if err != nil {
			return err
		}
		fmt.Fprint(out, bench.FormatTable1(rows, *t1))
		fmt.Fprintf(out, "(%v)\n", time.Since(start).Round(time.Millisecond))
	}

	if want("fig5") {
		section("Figure 5 (cluster throughput over TCP)")
		start := time.Now()
		points, err := bench.RunFigure5(bench.Figure5Config{
			Fingerprints: *fps,
			Scale:        *scale,
			UseTCP:       true,
		})
		if err != nil {
			return err
		}
		fmt.Fprint(out, bench.FormatFigure5(points))
		fmt.Fprintf(out, "(%v)\n", time.Since(start).Round(time.Millisecond))
	}

	if want("fig5sim") || want("fig5") {
		section("Figure 5 cross-check (queueing simulator)")
		points, err := bench.RunFigure5Sim(nil, nil, 100000)
		if err != nil {
			return err
		}
		fmt.Fprint(out, bench.FormatFigure5Sim(points))
	}

	if want("fig6") {
		section("Figure 6 (load balance)")
		start := time.Now()
		points, err := bench.RunFigure6(bench.Figure6Config{Nodes: 4, Scale: *scale})
		if err != nil {
			return err
		}
		fmt.Fprint(out, bench.FormatFigure6(points))
		fmt.Fprintf(out, "(%v)\n", time.Since(start).Round(time.Millisecond))
	}

	if want("ablations") {
		section("Ablation: batch size sweep")
		points, err := bench.RunBatchSweep(4, *fps/4, *scale, nil)
		if err != nil {
			return err
		}
		fmt.Fprint(out, bench.FormatBatchSweep(points))

		section("Ablation: LRU cache size")
		cachePoints, err := bench.RunCacheSweep(*scale, nil)
		if err != nil {
			return err
		}
		fmt.Fprint(out, bench.FormatCacheSweep(cachePoints))

		section("Ablation: Bloom filter")
		bloomPoints, err := bench.RunBloomAblation(*scale)
		if err != nil {
			return err
		}
		fmt.Fprint(out, bench.FormatBloomAblation(bloomPoints))

		section("Ablation: index backends")
		backendPoints, err := bench.RunBackendComparison(*scale)
		if err != nil {
			return err
		}
		fmt.Fprint(out, bench.FormatBackendComparison(backendPoints))

		section("Ablation: dedup completeness vs sparse indexing")
		compPoints, err := bench.RunCompleteness(*scale)
		if err != nil {
			return err
		}
		fmt.Fprint(out, bench.FormatCompleteness(compPoints))

		section("Ablation: virtual nodes")
		vnodePoints, err := bench.RunVNodeSweep(200000, nil)
		if err != nil {
			return err
		}
		fmt.Fprint(out, bench.FormatVNodeSweep(vnodePoints))

		section("Ablation: hot-path lock stripes")
		stripePoints, err := bench.RunStripeSweep(0, 0, nil)
		if err != nil {
			return err
		}
		fmt.Fprint(out, bench.FormatStripeSweep(stripePoints))
	}

	if want("ablations") || want("async") {
		section("Ablation: locked I/O vs asynchronous pipeline")
		start := time.Now()
		asyncPoints, err := bench.RunAsyncAblation(0, 0, nil)
		if err != nil {
			return err
		}
		fmt.Fprint(out, bench.FormatAsyncAblation(asyncPoints))
		fmt.Fprintf(out, "(%v)\n", time.Since(start).Round(time.Millisecond))
	}

	if want("ablations") || want("writes") {
		section("Ablation: write path (per-key vs batched vs async destage)")
		start := time.Now()
		writePoints, err := bench.RunWriteSweep(0, 0, nil)
		if err != nil {
			return err
		}
		fmt.Fprint(out, bench.FormatWriteSweep(writePoints))
		fmt.Fprintf(out, "(%v)\n", time.Since(start).Round(time.Millisecond))
		if *wrOut != "" {
			if err := bench.EmitWritesJSON(*wrOut, writePoints); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", *wrOut)
		}
	}

	if want("ablations") || want("hotpath") {
		section("Ablation: zero-alloc hot path (locked vs lock-free reads × backends)")
		start := time.Now()
		hpPoints, err := bench.RunHotPathSweep(0, 0, 0)
		if err != nil {
			return err
		}
		fmt.Fprint(out, bench.FormatHotPathSweep(hpPoints))
		fmt.Fprintf(out, "(%v)\n", time.Since(start).Round(time.Millisecond))
		if *hpOut != "" {
			if err := bench.EmitHotPathJSON(*hpOut, hpPoints); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", *hpOut)
		}
	}

	if want("transport") {
		section("Transport: stream multiplexing, credit flow control, stall isolation")
		start := time.Now()
		report, err := bench.RunTransportBench(*trCli, *trConn, 0)
		if err != nil {
			return err
		}
		fmt.Fprint(out, bench.FormatTransportBench(report))
		fmt.Fprintf(out, "(%v)\n", time.Since(start).Round(time.Millisecond))
		if *trOut != "" {
			if err := bench.EmitTransportJSON(*trOut, report); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", *trOut)
		}
	}

	if want("growth") {
		section("Growth: fixed vs resizable table overfilled to 8x the estimate")
		start := time.Now()
		grPoints, err := bench.RunGrowthSweep(*grExp)
		if err != nil {
			return err
		}
		fmt.Fprint(out, bench.FormatGrowthSweep(grPoints))
		fmt.Fprintf(out, "(%v)\n", time.Since(start).Round(time.Millisecond))
		if *grOut != "" {
			if err := bench.EmitGrowthJSON(*grOut, grPoints); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", *grOut)
		}
	}

	if want("recovery") {
		section("Recovery: journal durability tax and reopen/replay cost")
		start := time.Now()
		recPoints, err := bench.RunRecoverySweep(0)
		if err != nil {
			return err
		}
		fmt.Fprint(out, bench.FormatRecoverySweep(recPoints))
		fmt.Fprintf(out, "(%v)\n", time.Since(start).Round(time.Millisecond))
		if *recOut != "" {
			if err := bench.EmitRecoveryJSON(*recOut, recPoints); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", *recOut)
		}
	}

	if file != nil {
		if err := file.Close(); err != nil {
			return err
		}
	}
	return nil
}
