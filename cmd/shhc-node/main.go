// Command shhc-node runs one hybrid hash node and serves it over SHHC's
// TCP protocol. A cluster is a set of these plus a front-end (shhc-front)
// routing to them.
//
// Example:
//
//	shhc-node -id node-00 -addr 127.0.0.1:7001 -dir /data/shhc
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"shhc/internal/core"
	"shhc/internal/device"
	"shhc/internal/directio"
	"shhc/internal/hashdb"
	"shhc/internal/ring"
	"shhc/internal/rpc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "shhc-node:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id       = flag.String("id", "node-00", "node identity on the hash ring")
		addr     = flag.String("addr", "127.0.0.1:7001", "listen address")
		dir      = flag.String("dir", "", "directory for the on-disk hash table (empty = in-memory)")
		cache    = flag.Int("cache", 1<<16, "LRU cache capacity in entries")
		expected = flag.Int("expected", 1<<20, "expected fingerprints (sizes Bloom filter and buckets)")
		model    = flag.String("device", "ssd", "modeled index device: ssd|hdd|ram|null")
		sleep    = flag.Bool("sleep-device", false, "realize modeled device latency with real sleeps")
		noBloom  = flag.Bool("no-bloom", false, "disable the Bloom filter")
		wb       = flag.Bool("write-back", false, "delay SSD inserts until cache destage (asynchronous group commit)")
		wbBatch  = flag.Int("destage-batch", 0, "largest group-commit destage wave in entries (0 = default 256)")
		wbIval   = flag.Duration("destage-interval", 0, "longest a dirty entry waits before a destage wave fires (0 = default 2ms)")
		wbQueue  = flag.Int("destage-queue", 0, "dirty destage buffer bound in entries; evictions block when full (0 = default 4x batch)")
		journal  = flag.Bool("journal", false, "durable destage journal (write-back + -dir only): fsync evicted dirty entries to <dir>/<id>.wal before acking and replay the journal on restart")
		lockedIO = flag.Bool("locked-io", false, "probe the SSD under the stripe lock (pre-pipeline baseline, for ablations)")
		lockedRd = flag.Bool("locked-reads", false, "take the stripe lock on cache hits too (disables the lock-free read fast path, for ablations)")
		backend  = flag.String("backend", "buffered", "hash table I/O backend (-dir only): buffered|direct (direct = O_DIRECT, bypassing the page cache; falls back to buffered where unsupported)")
		qdepth   = flag.Int("direct-queue-depth", 0, "direct backend: concurrent O_DIRECT transfers (0 = default 32)")
		pprofOn  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty = off")
		muxWin   = flag.Int("mux-window", 0, "per-stream send-credit window in bytes for multiplexed (protocol >= 5) connections (0 = default 256KiB)")
	)
	flag.Parse()

	m, err := device.ModelByName(*model)
	if err != nil {
		return err
	}
	mode := device.Account
	if *sleep {
		mode = device.Sleep
	}
	dev := device.New(m, mode)

	var store hashdb.Store
	if *dir != "" {
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			return fmt.Errorf("create dir: %w", err)
		}
		path := filepath.Join(*dir, *id+".shdb")
		open := func(flag int) (hashdb.File, string, error) {
			switch *backend {
			case "buffered":
				f, err := os.OpenFile(path, flag, 0o644)
				return f, "buffered", err
			case "direct":
				f, err := directio.Open(path, flag, 0o644, directio.Options{QueueDepth: *qdepth})
				if err != nil {
					return nil, "", err
				}
				kind := "O_DIRECT"
				if !f.Direct() {
					kind = "O_DIRECT unsupported here, buffered fallback"
				}
				return f, kind, nil
			default:
				return nil, "", fmt.Errorf("unknown -backend %q (want buffered or direct)", *backend)
			}
		}
		if _, statErr := os.Stat(path); statErr == nil {
			f, kind, err := open(os.O_RDWR)
			if err != nil {
				return err
			}
			db, err := hashdb.OpenFile(f, path, dev)
			if err != nil {
				return err
			}
			store = db
			log.Printf("opened existing hash table %s (%d entries, %s)", path, db.Len(), kind)
		} else {
			f, kind, err := open(os.O_RDWR | os.O_CREATE | os.O_EXCL)
			if err != nil {
				return err
			}
			db, err := hashdb.CreateFile(f, path, hashdb.Options{ExpectedItems: *expected, Device: dev})
			if err != nil {
				return err
			}
			store = db
			log.Printf("created hash table %s (%s)", path, kind)
		}
	} else {
		store = hashdb.NewMemStore(dev)
		log.Printf("using in-memory hash table (device model %s)", m.Name)
	}

	journalPath := ""
	if *journal {
		if !*wb || *dir == "" {
			store.Close()
			return fmt.Errorf("-journal requires -write-back and -dir")
		}
		journalPath = filepath.Join(*dir, *id+".wal")
		log.Printf("destage journal at %s", journalPath)
	}

	node, err := core.NewNode(core.NodeConfig{
		ID:              ring.NodeID(*id),
		Store:           store,
		CacheSize:       *cache,
		DisableBloom:    *noBloom,
		BloomExpected:   *expected,
		WriteBack:       *wb,
		DestageBatch:    *wbBatch,
		DestageInterval: *wbIval,
		DestageQueue:    *wbQueue,
		JournalPath:     journalPath,
		LockedIO:        *lockedIO,
		LockedReads:     *lockedRd,
	})
	if err != nil {
		store.Close()
		return err
	}

	if *pprofOn != "" {
		// The blank net/http/pprof import registers its handlers on
		// http.DefaultServeMux; serve that on the side address.
		go func() {
			log.Printf("pprof on http://%s/debug/pprof/", *pprofOn)
			if err := http.ListenAndServe(*pprofOn, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	srv := rpc.NewServer(node, rpc.ServerConfig{Logger: log.Default(), Window: *muxWin})
	bound, err := srv.Listen(*addr)
	if err != nil {
		node.Close()
		return err
	}
	log.Printf("node %s serving on %s", *id, bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	if err := srv.Close(); err != nil {
		log.Printf("server close: %v", err)
	}
	return node.Close()
}
