// Command shhc-node runs one hybrid hash node and serves it over SHHC's
// TCP protocol. A cluster is a set of these plus a front-end (shhc-front)
// routing to them.
//
// Example:
//
//	shhc-node -id node-00 -addr 127.0.0.1:7001 -dir /data/shhc
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"shhc/internal/core"
	"shhc/internal/device"
	"shhc/internal/hashdb"
	"shhc/internal/ring"
	"shhc/internal/rpc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "shhc-node:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id       = flag.String("id", "node-00", "node identity on the hash ring")
		addr     = flag.String("addr", "127.0.0.1:7001", "listen address")
		dir      = flag.String("dir", "", "directory for the on-disk hash table (empty = in-memory)")
		cache    = flag.Int("cache", 1<<16, "LRU cache capacity in entries")
		expected = flag.Int("expected", 1<<20, "expected fingerprints (sizes Bloom filter and buckets)")
		model    = flag.String("device", "ssd", "modeled index device: ssd|hdd|ram|null")
		sleep    = flag.Bool("sleep-device", false, "realize modeled device latency with real sleeps")
		noBloom  = flag.Bool("no-bloom", false, "disable the Bloom filter")
		wb       = flag.Bool("write-back", false, "delay SSD inserts until cache destage (asynchronous group commit)")
		wbBatch  = flag.Int("destage-batch", 0, "largest group-commit destage wave in entries (0 = default 256)")
		wbIval   = flag.Duration("destage-interval", 0, "longest a dirty entry waits before a destage wave fires (0 = default 2ms)")
		wbQueue  = flag.Int("destage-queue", 0, "dirty destage buffer bound in entries; evictions block when full (0 = default 4x batch)")
		journal  = flag.Bool("journal", false, "durable destage journal (write-back + -dir only): fsync evicted dirty entries to <dir>/<id>.wal before acking and replay the journal on restart")
		lockedIO = flag.Bool("locked-io", false, "probe the SSD under the stripe lock (pre-pipeline baseline, for ablations)")
	)
	flag.Parse()

	m, err := device.ModelByName(*model)
	if err != nil {
		return err
	}
	mode := device.Account
	if *sleep {
		mode = device.Sleep
	}
	dev := device.New(m, mode)

	var store hashdb.Store
	if *dir != "" {
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			return fmt.Errorf("create dir: %w", err)
		}
		path := filepath.Join(*dir, *id+".shdb")
		if _, statErr := os.Stat(path); statErr == nil {
			db, err := hashdb.Open(path, dev)
			if err != nil {
				return err
			}
			store = db
			log.Printf("opened existing hash table %s (%d entries)", path, db.Len())
		} else {
			db, err := hashdb.Create(path, hashdb.Options{ExpectedItems: *expected, Device: dev})
			if err != nil {
				return err
			}
			store = db
			log.Printf("created hash table %s", path)
		}
	} else {
		store = hashdb.NewMemStore(dev)
		log.Printf("using in-memory hash table (device model %s)", m.Name)
	}

	journalPath := ""
	if *journal {
		if !*wb || *dir == "" {
			store.Close()
			return fmt.Errorf("-journal requires -write-back and -dir")
		}
		journalPath = filepath.Join(*dir, *id+".wal")
		log.Printf("destage journal at %s", journalPath)
	}

	node, err := core.NewNode(core.NodeConfig{
		ID:              ring.NodeID(*id),
		Store:           store,
		CacheSize:       *cache,
		DisableBloom:    *noBloom,
		BloomExpected:   *expected,
		WriteBack:       *wb,
		DestageBatch:    *wbBatch,
		DestageInterval: *wbIval,
		DestageQueue:    *wbQueue,
		JournalPath:     journalPath,
		LockedIO:        *lockedIO,
	})
	if err != nil {
		store.Close()
		return err
	}

	srv := rpc.NewServer(node, rpc.ServerConfig{Logger: log.Default()})
	bound, err := srv.Listen(*addr)
	if err != nil {
		node.Close()
		return err
	}
	log.Printf("node %s serving on %s", *id, bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	if err := srv.Close(); err != nil {
		log.Printf("server close: %v", err)
	}
	return node.Close()
}
