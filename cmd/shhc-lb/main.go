// Command shhc-lb runs the HTTP load balancer tier from the paper's
// Figure 2 (the HAProxy box): a round-robin, health-checked reverse proxy
// over web front-ends.
//
// Example:
//
//	shhc-lb -addr :8000 -backends http://10.0.0.2:8080,http://10.0.0.3:8080
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"shhc/internal/lb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "shhc-lb:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:8000", "listen address")
		backends = flag.String("backends", "", "comma-separated front-end base URLs")
		interval = flag.Duration("health-interval", time.Second, "health probe period")
	)
	flag.Parse()
	if *backends == "" {
		return fmt.Errorf("-backends is required")
	}

	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		urls = append(urls, strings.TrimSpace(u))
	}
	balancer, err := lb.New(lb.Config{Backends: urls, HealthInterval: *interval})
	if err != nil {
		return err
	}
	defer balancer.Close()

	bound, err := balancer.Listen(*addr)
	if err != nil {
		return err
	}
	log.Printf("load balancer on http://%s over %d backends", bound, len(urls))
	if !balancer.WaitHealthy(context.Background(), 5*time.Second) {
		log.Printf("warning: no backend healthy yet")
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	return nil
}
