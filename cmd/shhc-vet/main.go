// Command shhc-vet is the multichecker for the repo's invariant
// analyzers. It mechanically enforces the contracts the hot path relies
// on — pooled-buffer ownership (bufown, poolescape), no I/O under
// RAM-only stripe locks plus lock rank order (lockio), context-first
// APIs (ctxfirst), and atomic/plain access discipline (atomicmix) —
// using the //shhc: markers in source as ground truth.
//
// Usage:
//
//	go run ./cmd/shhc-vet [-cache dir] [-list] [packages...]
//
// Patterns default to ./... relative to the current module. The exit
// status is 1 when any finding is reported, so CI can gate on it.
// -cache persists per-package facts and findings keyed by content hash;
// unchanged packages replay instantly.
package main

import (
	"flag"
	"fmt"
	"os"

	"shhc/internal/analysis"
	"shhc/internal/analysis/atomicmix"
	"shhc/internal/analysis/bufown"
	"shhc/internal/analysis/ctxfirst"
	"shhc/internal/analysis/lockio"
	"shhc/internal/analysis/poolescape"
)

var all = []*analysis.Analyzer{
	bufown.Analyzer,
	lockio.Analyzer,
	ctxfirst.Analyzer,
	atomicmix.Analyzer,
	poolescape.Analyzer,
}

func main() {
	cacheDir := flag.String("cache", "", "directory for the per-package fact/finding cache (empty disables caching)")
	list := flag.Bool("list", false, "list registered analyzers and exit")
	only := flag.String("only", "", "comma-free single analyzer name to run alone (debugging)")
	verbose := flag.Bool("v", false, "print run statistics")
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *only != "" {
		analyzers = nil
		for _, a := range all {
			if a.Name == *only {
				analyzers = []*analysis.Analyzer{a}
			}
		}
		if analyzers == nil {
			fmt.Fprintf(os.Stderr, "shhc-vet: unknown analyzer %q\n", *only)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "shhc-vet: %v\n", err)
		os.Exit(2)
	}

	res, err := analysis.Run(analysis.RunConfig{
		Dir:       dir,
		Patterns:  patterns,
		Analyzers: analyzers,
		CacheDir:  *cacheDir,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "shhc-vet: %v\n", err)
		os.Exit(2)
	}

	for _, f := range res.Findings {
		fmt.Println(f.String())
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "shhc-vet: %d packages (%d cached), %d findings, %d suppressed\n",
			res.Packages, res.CacheHits, len(res.Findings), res.Suppressed)
	}
	if len(res.Findings) > 0 {
		os.Exit(1)
	}
}
