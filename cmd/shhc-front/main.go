// Command shhc-front runs the web front-end tier: the HTTP service backup
// clients talk to. It routes fingerprint batches to hash nodes (remote
// shhc-node processes, or an embedded local cluster for single-machine
// use) and forwards new chunks to the (simulated) cloud store.
//
// Examples:
//
//	shhc-front -addr :8080 -nodes node-00=127.0.0.1:7001,node-01=127.0.0.1:7002
//	shhc-front -addr :8080 -local 4
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"shhc"
	"shhc/internal/cloudsim"
	"shhc/internal/webfront"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "shhc-front:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		nodes    = flag.String("nodes", "", "comma-separated id=host:port remote hash nodes")
		local    = flag.Int("local", 0, "run an embedded local cluster of this many nodes instead")
		replicas = flag.Int("replicas", 1, "replicas per fingerprint (fault tolerance)")
		quorum   = flag.Int("quorum", 0, "write quorum when replicas > 1 (0 = majority)")
		antiGap  = flag.Duration("anti-entropy", 0, "anti-entropy sweep interval when replicas > 1 (0 = only on membership changes)")
		pprofOn  = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the front-end mux")
		rpcConns = flag.Int("rpc-conns", 0, "TCP connections per remote hash node (0 = default 4; streams multiplex over them)")
		rpcStrms = flag.Int("rpc-streams", 0, "logical streams per node connection for plain calls (0 = default 4)")
		rpcWin   = flag.Int("rpc-window", 0, "per-stream send-credit window in bytes (0 = default 256KiB)")
	)
	flag.Parse()

	transport := shhc.TransportOptions{Conns: *rpcConns, StreamsPerConn: *rpcStrms, Window: *rpcWin}
	cluster, err := buildCluster(*nodes, *local, *replicas, *quorum, *antiGap, transport)
	if err != nil {
		return err
	}
	defer cluster.Close()

	chunks := cloudsim.New(cloudsim.Config{})
	defer chunks.Close()

	front, err := webfront.New(webfront.Config{Index: cluster, Chunks: chunks, EnablePprof: *pprofOn, Logger: log.Default()})
	if err != nil {
		return err
	}
	bound, err := front.Listen(*addr)
	if err != nil {
		return err
	}
	log.Printf("front-end serving on http://%s (cluster size %d, replicas %d)", bound, cluster.Size(), *replicas)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	return front.Close()
}

func buildCluster(nodes string, local, replicas, quorum int, antiGap time.Duration, transport shhc.TransportOptions) (*shhc.Cluster, error) {
	if nodes != "" && local > 0 {
		return nil, fmt.Errorf("use either -nodes or -local, not both")
	}
	if nodes == "" && local <= 0 {
		local = 4
	}
	if local > 0 {
		return shhc.NewLocalCluster(shhc.ClusterOptions{
			Nodes:               local,
			Replicas:            replicas,
			WriteQuorum:         quorum,
			AntiEntropyInterval: antiGap,
		})
	}

	var backends []shhc.Backend
	for _, entry := range strings.Split(nodes, ",") {
		id, hostport, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok {
			return nil, fmt.Errorf("bad -nodes entry %q (want id=host:port)", entry)
		}
		client, err := shhc.DialNodeTransport(shhc.NodeID(id), hostport, transport)
		if err != nil {
			return nil, fmt.Errorf("dial %s: %w", entry, err)
		}
		backends = append(backends, client)
	}
	return shhc.NewCluster(shhc.ClusterConfig{
		Replicas:            replicas,
		WriteQuorum:         quorum,
		AntiEntropyInterval: antiGap,
	}, backends...)
}
