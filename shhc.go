// Package shhc is a Go implementation of SHHC, the Scalable Hybrid Hash
// Cluster for cloud backup services (Xu, Hu, Mkandawire, Jiang — ICDCS
// Workshops 2011): a distributed, low-latency fingerprint store and lookup
// service for inline data deduplication.
//
// The package is a facade over the implementation packages:
//
//   - a hybrid hash Node combines an in-RAM LRU cache and Bloom filter
//     with an on-SSD hash table (Figure 4 lookup flow);
//   - a Cluster partitions the fingerprint space across nodes with
//     consistent hashing and fans batched lookups out in parallel;
//   - nodes can be in-process (NewLocalCluster) or remote over SHHC's
//     TCP protocol (StartNodeServer / DialNode);
//   - the web front-end tier (NewFrontend), backup client (NewBackupClient)
//     and simulated cloud store (NewCloudStore) complete the paper's
//     four-tier architecture for end-to-end use.
//
// Quick start:
//
//	cluster, _ := shhc.NewLocalCluster(shhc.ClusterOptions{Nodes: 4})
//	defer cluster.Close()
//	res, _ := cluster.LookupOrInsert(context.Background(), shhc.FingerprintOf(chunk), 1)
//	if !res.Exists {
//		// first sight of this chunk: upload it
//	}
//
// Every lookup, insert, stats, and membership operation takes a
// context.Context as its first argument: deadlines bound how long a
// request may hold flight-table slots and device queues, cancellation
// releases them early (propagated over the wire to remote nodes), and
// ClusterOptions.HedgeAfter turns replicated clusters' tail latency into
// a race the fastest replica wins. Callers that need none of that pass
// context.Background() and pay nothing for the rest.
//
//shhc:ctxapi
package shhc

import (
	"fmt"
	"net"
	"time"

	"shhc/internal/backup"
	"shhc/internal/batcher"
	"shhc/internal/cloudsim"
	"shhc/internal/core"
	"shhc/internal/device"
	"shhc/internal/fingerprint"
	"shhc/internal/hashdb"
	"shhc/internal/ring"
	"shhc/internal/rpc"
	"shhc/internal/trace"
	"shhc/internal/webfront"
)

// Re-exported core types. These aliases are the public names; the internal
// packages are implementation detail.
type (
	// Fingerprint is a chunk's SHA-1 digest.
	Fingerprint = fingerprint.Fingerprint
	// Value is the locator stored per fingerprint.
	Value = core.Value
	// Pair couples a fingerprint with the locator to assign if new.
	Pair = core.Pair
	// LookupResult is a node's answer to one fingerprint query.
	LookupResult = core.LookupResult
	// Node is a hybrid RAM+SSD hash node.
	Node = core.Node
	// NodeConfig configures a Node.
	NodeConfig = core.NodeConfig
	// NodeStats snapshots a node's counters.
	NodeStats = core.NodeStats
	// ReplicationStats snapshots a cluster's replication counters: quorum
	// fan-out, read-repair, the async repair queue, and anti-entropy.
	ReplicationStats = core.ReplicationStats
	// AntiEntropyStats reports what one Cluster.AntiEntropy sweep did.
	AntiEntropyStats = core.AntiEntropyStats
	// Cluster routes fingerprint operations across hash nodes.
	Cluster = core.Cluster
	// Backend is a hash node as seen by the cluster (local or remote).
	Backend = core.Backend
	// NodeID identifies a node on the hash ring.
	NodeID = ring.NodeID
	// Batcher aggregates single lookups into batches (front-end behavior).
	Batcher = batcher.Batcher
	// BackupClient is the client-tier chunker/uploader.
	BackupClient = backup.Client
	// BackupReport summarizes one backup run.
	BackupReport = backup.Report
	// Manifest records the chunks of one backup for restore.
	Manifest = backup.Manifest
	// CloudStore is the simulated cloud storage backend.
	CloudStore = cloudsim.Store
	// Frontend is the web front-end HTTP server.
	Frontend = webfront.Server
	// WorkloadSpec parameterizes a synthetic fingerprint workload.
	WorkloadSpec = trace.Spec
	// WorkloadStats are Table I statistics recomputed from a stream.
	WorkloadStats = trace.Stats
)

// Lookup answer sources (which tier of the hybrid node answered).
const (
	SourceCache = core.SourceCache
	SourceBloom = core.SourceBloom
	SourceStore = core.SourceStore
	SourceNew   = core.SourceNew
)

// FingerprintOf computes a chunk's fingerprint.
func FingerprintOf(data []byte) Fingerprint { return fingerprint.FromData(data) }

// ParseFingerprint decodes a 40-char hex fingerprint.
func ParseFingerprint(s string) (Fingerprint, error) { return fingerprint.Parse(s) }

// ClusterOptions configures NewLocalCluster.
type ClusterOptions struct {
	// Nodes is the cluster size. Default 4 (the paper's largest
	// evaluated configuration).
	Nodes int
	// Dir, when set, stores each node's hash table in a file under Dir;
	// empty keeps tables in memory (still charged with SSD latency).
	Dir string
	// DeviceModel is the modeled index device per node: "ssd" (default),
	// "hdd", "ram", or "null".
	DeviceModel string
	// SleepDevices makes modeled device latency real (time.Sleep) so
	// live benchmarks behave as if the hardware were attached; otherwise
	// latency is only accounted.
	SleepDevices bool
	// CacheSize is the per-node LRU capacity. Default 1<<16 entries.
	CacheSize int
	// ExpectedItems sizes per-node Bloom filters and bucket regions.
	// Default 1<<20.
	ExpectedItems int
	// DisableBloom turns Bloom filters off (ablation).
	DisableBloom bool
	// WriteBack delays SSD inserts until LRU destage: evicted dirty
	// entries are parked in a bounded per-node buffer and destaged
	// asynchronously in page-coalesced group-commit waves. Inserts are
	// RAM-speed; entries not yet destaged survive only until a crash
	// (call Flush/Close to drain durably).
	WriteBack bool
	// DestageBatch is the largest group-commit destage wave in entries
	// (write-back only); 0 selects the default (256).
	DestageBatch int
	// DestageInterval bounds how long an evicted dirty entry waits
	// before a destage wave is forced; 0 selects the default (2ms).
	DestageInterval time.Duration
	// DestageQueue bounds the per-node dirty destage buffer; evictions
	// block when it is full (backpressure). 0 selects the default
	// (4 × DestageBatch).
	DestageQueue int
	// Journal enables each node's durable destage journal (requires Dir
	// and WriteBack): an evicted dirty entry is group-commit fsynced to
	// <Dir>/<node>.wal before its eviction acknowledges, and the journal
	// is replayed into the hash table when the node restarts — closing
	// write-back's crash window between eviction and destage.
	Journal bool
	// Stripes is the per-node hot-path lock stripe count; 0 selects a
	// GOMAXPROCS-based default, 1 fully serializes each node (the
	// original single-lock behavior).
	Stripes int
	// Replicas > 1 keeps that many durable copies of every entry on
	// consecutive ring successors: inserts replicate with quorum
	// acknowledgment, divergent lookups trigger read-repair, and
	// anti-entropy sweeps re-replicate under-replicated ranges after
	// membership changes.
	Replicas int
	// WriteQuorum is how many replicas must durably hold an insert before
	// it acknowledges. 0 selects a majority (Replicas/2 + 1); values are
	// clamped to [1, Replicas]. 1 trades the durability guarantee for
	// availability: inserts succeed with every mirror down and the repair
	// queue backfills later. An insert that cannot reach its quorum never
	// fails outright — the deciding node's copy is already durable, so it
	// acknowledges with the safe "new" answer (the client uploads) and
	// repair converges the missing replicas; QuorumFailures counts these.
	WriteQuorum int
	// AntiEntropyInterval adds a periodic tick to the anti-entropy sweep
	// that re-replicates entries missing from any replica (Replicas > 1
	// only). Membership changes always trigger a sweep, interval or not.
	AntiEntropyInterval time.Duration
	// VirtualNodes per node on the hash ring; 0 selects the default.
	VirtualNodes int
	// HedgeAfter enables hedged reads when Replicas > 1: a Lookup that
	// has not answered after this long is raced against the next replica
	// and the first hit wins (a lone miss waits for the other replicas —
	// see core.ClusterConfig.HedgeAfter).
	HedgeAfter time.Duration
}

func (o *ClusterOptions) fill() {
	if o.Nodes <= 0 {
		o.Nodes = 4
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 1 << 16
	}
	if o.ExpectedItems <= 0 {
		o.ExpectedItems = 1 << 20
	}
	if o.DeviceModel == "" {
		o.DeviceModel = "ssd"
	}
}

// NewLocalCluster builds an in-process SHHC cluster: n hybrid nodes behind
// a consistent-hash router. It is the library entry point for
// single-machine use and for experiments.
func NewLocalCluster(opts ClusterOptions) (*Cluster, error) {
	opts.fill()
	model, err := device.ModelByName(opts.DeviceModel)
	if err != nil {
		return nil, err
	}
	mode := device.Account
	if opts.SleepDevices {
		mode = device.Sleep
	}

	if opts.Journal && (opts.Dir == "" || !opts.WriteBack) {
		return nil, fmt.Errorf("shhc: ClusterOptions.Journal requires Dir and WriteBack")
	}

	backends := make([]core.Backend, 0, opts.Nodes)
	for i := 0; i < opts.Nodes; i++ {
		id := ring.NodeID(fmt.Sprintf("node-%02d", i))
		var store hashdb.Store
		dev := device.New(model, mode)
		if opts.Dir != "" {
			db, err := hashdb.Create(
				fmt.Sprintf("%s/%s.shdb", opts.Dir, id),
				hashdb.Options{ExpectedItems: opts.ExpectedItems, Device: dev},
			)
			if err != nil {
				closeAll(backends)
				return nil, err
			}
			store = db
		} else {
			store = hashdb.NewMemStore(dev)
		}
		journalPath := ""
		if opts.Journal {
			journalPath = fmt.Sprintf("%s/%s.wal", opts.Dir, id)
		}
		node, err := core.NewNode(core.NodeConfig{
			ID:              id,
			Store:           store,
			CacheSize:       opts.CacheSize,
			DisableBloom:    opts.DisableBloom,
			BloomExpected:   opts.ExpectedItems,
			WriteBack:       opts.WriteBack,
			DestageBatch:    opts.DestageBatch,
			DestageInterval: opts.DestageInterval,
			DestageQueue:    opts.DestageQueue,
			JournalPath:     journalPath,
			Stripes:         opts.Stripes,
		})
		if err != nil {
			store.Close()
			closeAll(backends)
			return nil, err
		}
		backends = append(backends, node)
	}
	cluster, err := core.NewCluster(core.ClusterConfig{
		VirtualNodes:        opts.VirtualNodes,
		Replicas:            opts.Replicas,
		WriteQuorum:         opts.WriteQuorum,
		AntiEntropyInterval: opts.AntiEntropyInterval,
		HedgeAfter:          opts.HedgeAfter,
	}, backends...)
	if err != nil {
		closeAll(backends)
		return nil, err
	}
	return cluster, nil
}

func closeAll(backends []core.Backend) {
	for _, b := range backends {
		b.Close()
	}
}

// ClusterConfig configures NewCluster (explicit-backend clusters): the
// replication factor, ring virtual-node count, and hedged-read delay.
// Unlike the old NewCluster(replicas int, ...) signature, every routing
// knob is reachable for distributed deployments, not only for
// NewLocalCluster's in-process ones.
type ClusterConfig = core.ClusterConfig

// NewCluster assembles a cluster from explicit backends (e.g. DialNode
// clients for a distributed deployment).
func NewCluster(cfg ClusterConfig, backends ...Backend) (*Cluster, error) {
	return core.NewCluster(cfg, backends...)
}

// NewNodeForScaling creates a standalone hybrid node to pass to
// Cluster.AddNode (dynamic scaling); unlike StartNodeServer it stays
// in-process so Rebalance can migrate its entries directly.
func NewNodeForScaling(cfg NodeConfig) (Backend, error) {
	return core.NewNode(cfg)
}

// NodeServer is a hash node exposed over TCP.
type NodeServer struct {
	Node *Node
	Addr net.Addr
	srv  *rpc.Server
}

// Close stops serving and closes the node.
func (s *NodeServer) Close() error {
	err := s.srv.Close()
	if cerr := s.Node.Close(); err == nil {
		err = cerr
	}
	return err
}

// StartNodeServer creates a hybrid node and serves it on addr
// (e.g. "127.0.0.1:0").
func StartNodeServer(addr string, cfg NodeConfig) (*NodeServer, error) {
	node, err := core.NewNode(cfg)
	if err != nil {
		return nil, err
	}
	srv := rpc.NewServer(node, rpc.ServerConfig{})
	bound, err := srv.Listen(addr)
	if err != nil {
		node.Close()
		return nil, err
	}
	return &NodeServer{Node: node, Addr: bound, srv: srv}, nil
}

// DialNode connects to a remote hash node; the result is a Backend usable
// in NewCluster.
func DialNode(id NodeID, addr string) (Backend, error) {
	return rpc.Dial(id, addr, rpc.ClientConfig{})
}

// TransportOptions tunes the multiplexed client transport (wire
// protocol 5). Zero values select the defaults.
type TransportOptions struct {
	// Conns is the TCP connection pool size per node (default 4).
	Conns int
	// StreamsPerConn is how many logical streams round-robin over each
	// connection for plain calls (default 4).
	StreamsPerConn int
	// Window is the per-stream send-credit window in bytes
	// (default 256KiB).
	Window int
}

// DialNodeTransport is DialNode with explicit transport tuning.
func DialNodeTransport(id NodeID, addr string, o TransportOptions) (Backend, error) {
	return rpc.Dial(id, addr, rpc.ClientConfig{
		Conns:          o.Conns,
		StreamsPerConn: o.StreamsPerConn,
		Window:         o.Window,
	})
}

// NewBatcher wraps a cluster with front-end-style query aggregation.
// maxBatch and maxDelayMillis bound the batch window (paper batch sizes:
// 1, 128, 2048).
func NewBatcher(cluster *Cluster, maxBatch int, maxDelayMillis int) *Batcher {
	return batcher.New(cluster.BatchLookupOrInsert, batcher.Config{
		MaxBatch: maxBatch,
		MaxDelay: millis(maxDelayMillis),
	})
}

// NewCloudStore creates a simulated cloud storage backend.
func NewCloudStore() *CloudStore { return cloudsim.New(cloudsim.Config{}) }

// NewFrontend creates the web front-end over a cluster and chunk store.
func NewFrontend(cluster *Cluster, chunks *CloudStore) (*Frontend, error) {
	return webfront.New(webfront.Config{Index: cluster, Chunks: chunks})
}

// NewBackupClient creates a backup client against a front-end URL.
// chunkSize > 0 selects fixed-size chunking; 0 selects content-defined.
func NewBackupClient(frontURL string, chunkSize int) (*BackupClient, error) {
	return backup.New(backup.Config{FrontURL: frontURL, ChunkSize: chunkSize})
}

// PaperWorkloads returns the four Table I workload specs.
func PaperWorkloads() []WorkloadSpec { return trace.PaperWorkloads() }

// NewWorkload creates a generator for a workload spec. Use spec.Scaled(k)
// to shrink paper-scale workloads.
func NewWorkload(spec WorkloadSpec) *trace.Generator { return trace.NewGenerator(spec) }
