// Faulttolerance: demonstrate the replication extension (the paper's
// "fault tolerance" future-work item). With Replicas=2, killing a hash
// node loses no duplicate-detection state: lookups fail over to the
// surviving replica.
//
//	go run ./examples/faulttolerance
package main

import (
	"context"
	"fmt"
	"log"

	"shhc"
	"shhc/internal/hashdb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Three nodes over TCP with 2-way replication.
	var servers []*shhc.NodeServer
	var backends []shhc.Backend
	for i := 0; i < 3; i++ {
		id := shhc.NodeID(fmt.Sprintf("node-%02d", i))
		srv, err := shhc.StartNodeServer("127.0.0.1:0", shhc.NodeConfig{
			ID:            id,
			Store:         hashdb.NewMemStore(nil),
			CacheSize:     1 << 12,
			BloomExpected: 1 << 16,
		})
		if err != nil {
			return err
		}
		servers = append(servers, srv)
		client, err := shhc.DialNode(id, srv.Addr.String())
		if err != nil {
			return err
		}
		backends = append(backends, client)
	}
	defer func() {
		for _, s := range servers {
			if s != nil {
				s.Close()
			}
		}
	}()

	cluster, err := shhc.NewCluster(shhc.ClusterConfig{Replicas: 2}, backends...)
	if err != nil {
		return err
	}
	defer cluster.Close()

	// Store 10k fingerprints.
	const n = 10000
	for i := 0; i < n; i++ {
		fp := shhc.FingerprintOf([]byte(fmt.Sprintf("chunk-%d", i)))
		if _, err := cluster.LookupOrInsert(context.Background(), fp, shhc.Value(i+1)); err != nil {
			return err
		}
	}
	fmt.Printf("stored %d fingerprints across 3 nodes with 2-way replication\n", n)

	// Kill node-01 (hard: close its server and node).
	fmt.Println("killing node-01 ...")
	servers[1].Close()
	servers[1] = nil

	// Every fingerprint must still be recognized.
	lost := 0
	for i := 0; i < n; i++ {
		fp := shhc.FingerprintOf([]byte(fmt.Sprintf("chunk-%d", i)))
		res, err := cluster.Lookup(context.Background(), fp)
		if err != nil || !res.Exists {
			lost++
		}
	}
	if lost > 0 {
		return fmt.Errorf("%d fingerprints lost after node failure", lost)
	}
	fmt.Printf("all %d fingerprints still found after losing a node: failover works\n", n)

	// And re-backing-up the same data uploads nothing.
	reinserted := 0
	for i := 0; i < n; i++ {
		fp := shhc.FingerprintOf([]byte(fmt.Sprintf("chunk-%d", i)))
		res, err := cluster.LookupOrInsert(context.Background(), fp, 0)
		if err != nil {
			return err
		}
		if !res.Exists {
			reinserted++
		}
	}
	fmt.Printf("re-backup after failure: %d chunks re-uploaded (want 0)\n", reinserted)
	return nil
}
