// Dynamicscaling: grow and shrink a live SHHC cluster (the paper's
// "dynamic resource scaling" future-work item). A fourth node joins a
// loaded 3-node cluster and Rebalance migrates its share of fingerprints
// over; later a node is drained and decommissioned with no loss of
// duplicate detection.
//
//	go run ./examples/dynamicscaling
package main

import (
	"context"
	"fmt"
	"log"

	"shhc"
	"shhc/internal/hashdb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func newNode(id string) (shhc.Backend, error) {
	return shhc.NewNodeForScaling(shhc.NodeConfig{
		ID:            shhc.NodeID(id),
		Store:         hashdb.NewMemStore(nil),
		CacheSize:     1 << 12,
		BloomExpected: 1 << 17,
	})
}

func run() error {
	backends := make([]shhc.Backend, 3)
	for i := range backends {
		b, err := newNode(fmt.Sprintf("node-%02d", i))
		if err != nil {
			return err
		}
		backends[i] = b
	}
	cluster, err := shhc.NewCluster(shhc.ClusterConfig{}, backends...)
	if err != nil {
		return err
	}
	defer cluster.Close()

	// Load 60k fingerprints.
	const n = 60000
	for i := 0; i < n; i++ {
		fp := shhc.FingerprintOf([]byte(fmt.Sprintf("chunk-%d", i)))
		if _, err := cluster.LookupOrInsert(context.Background(), fp, shhc.Value(i+1)); err != nil {
			return err
		}
	}
	printDistribution(cluster, "before scaling")

	// Scale up with the two-phase join: entries are copied to the new
	// node BEFORE routing flips, so duplicate detection never blinks.
	// (AddNode + Rebalance is the coarse alternative: moved ranges are
	// re-uploaded once until migration completes.)
	extra, err := newNode("node-03")
	if err != nil {
		return err
	}
	stats, err := cluster.JoinNode(context.Background(), extra)
	if err != nil {
		return err
	}
	fmt.Printf("\njoin of node-03: moved %d entries (scanned %d)\n", stats.Moved, stats.Scanned)
	printDistribution(cluster, "after scale-up")

	// Verify dedup survived the migration.
	if err := verifyAllDuplicate(cluster, n); err != nil {
		return err
	}
	fmt.Printf("all %d fingerprints still detected as duplicates after scale-up\n", n)

	// Scale down: drain node-01 gracefully.
	drain, err := cluster.DrainNode(context.Background(), "node-01")
	if err != nil {
		return err
	}
	fmt.Printf("\ndrained node-01: migrated %d entries to survivors\n", drain.Moved)
	printDistribution(cluster, "after scale-down")

	if err := verifyAllDuplicate(cluster, n); err != nil {
		return err
	}
	fmt.Printf("all %d fingerprints still detected as duplicates after decommission\n", n)
	return nil
}

func verifyAllDuplicate(cluster *shhc.Cluster, n int) error {
	for i := 0; i < n; i++ {
		fp := shhc.FingerprintOf([]byte(fmt.Sprintf("chunk-%d", i)))
		res, err := cluster.LookupOrInsert(context.Background(), fp, 0)
		if err != nil {
			return err
		}
		if !res.Exists {
			return fmt.Errorf("fingerprint %d lost during scaling", i)
		}
	}
	return nil
}

func printDistribution(cluster *shhc.Cluster, label string) {
	stats, err := cluster.Stats(context.Background())
	if err != nil {
		log.Printf("stats: %v", err)
		return
	}
	total := 0
	for _, st := range stats {
		total += st.StoreEntries
	}
	fmt.Printf("\nentry distribution %s (%d total):\n", label, total)
	for _, st := range stats {
		fmt.Printf("  %-8s %7d entries (%.1f%%)\n", st.ID, st.StoreEntries,
			float64(st.StoreEntries)/float64(total)*100)
	}
}
