// Dedupworkloads: replay the paper's Table I workloads (scaled) through an
// SHHC cluster, reporting the deduplication each achieves and how evenly
// the fingerprints spread across nodes — a miniature of the paper's whole
// evaluation section.
//
//	go run ./examples/dedupworkloads [-scale 64]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"shhc"
)

func main() {
	scale := flag.Int("scale", 64, "workload scale divisor (1 = full paper scale)")
	flag.Parse()
	if err := run(*scale); err != nil {
		log.Fatal(err)
	}
}

func run(scale int) error {
	fmt.Printf("Table I workloads at 1/%d scale through a 4-node cluster\n\n", scale)
	fmt.Printf("%-22s %12s %10s %10s %10s\n", "workload", "fingerprints", "duplicates", "paper", "measured")

	for _, spec := range shhc.PaperWorkloads() {
		scaled := spec.Scaled(scale)

		// Cold cluster per workload, as in the paper's runs.
		cluster, err := shhc.NewLocalCluster(shhc.ClusterOptions{
			Nodes:         4,
			ExpectedItems: scaled.Fingerprints + 1,
		})
		if err != nil {
			return err
		}

		gen := shhc.NewWorkload(scaled)
		var total, dups int
		pairs := make([]shhc.Pair, 0, 2048)
		flush := func() error {
			if len(pairs) == 0 {
				return nil
			}
			results, err := cluster.BatchLookupOrInsert(context.Background(), pairs)
			if err != nil {
				return err
			}
			for _, r := range results {
				if r.Exists {
					dups++
				}
			}
			pairs = pairs[:0]
			return nil
		}
		for {
			fp, ok := gen.Next()
			if !ok {
				break
			}
			total++
			pairs = append(pairs, shhc.Pair{FP: fp, Val: shhc.Value(total)})
			if len(pairs) == cap(pairs) {
				if err := flush(); err != nil {
					cluster.Close()
					return err
				}
			}
		}
		if err := flush(); err != nil {
			cluster.Close()
			return err
		}

		fmt.Printf("%-22s %12d %10d %9.0f%% %9.1f%%\n",
			scaled.Name, total, dups, spec.PctRedundant*100, float64(dups)/float64(total)*100)

		if spec.Name == "Time machine" {
			// Show the Figure 6 load-balance view for the last workload.
			stats, err := cluster.Stats(context.Background())
			if err != nil {
				cluster.Close()
				return err
			}
			sum := 0
			for _, st := range stats {
				sum += st.StoreEntries
			}
			fmt.Printf("\nhash entry distribution after %s (Figure 6 view):\n", scaled.Name)
			for _, st := range stats {
				fmt.Printf("  %-8s %8d entries (%.1f%%)\n",
					st.ID, st.StoreEntries, float64(st.StoreEntries)/float64(sum)*100)
			}
		}
		cluster.Close()
	}
	return nil
}
