// Backupservice: the paper's full four-tier architecture, end to end, in
// one process — backup clients over HTTP to a web front-end, which batches
// fingerprint queries to hash nodes over SHHC's TCP protocol and forwards
// new chunks to a (simulated) cloud store.
//
// The demo backs the same "machine image" up three times (full, unchanged,
// and 2% churn), printing what deduplication saves in WAN traffic, then
// restores and verifies the last generation.
//
//	go run ./examples/backupservice
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"

	"shhc"
	"shhc/internal/hashdb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Tier 3: the hybrid hash cluster (three nodes over TCP). ---
	var servers []*shhc.NodeServer
	var backends []shhc.Backend
	for i := 0; i < 3; i++ {
		id := shhc.NodeID(fmt.Sprintf("node-%02d", i))
		srv, err := shhc.StartNodeServer("127.0.0.1:0", shhc.NodeConfig{
			ID:            id,
			Store:         hashdb.NewMemStore(nil),
			CacheSize:     1 << 14,
			BloomExpected: 1 << 18,
		})
		if err != nil {
			return err
		}
		servers = append(servers, srv)
		client, err := shhc.DialNode(id, srv.Addr.String())
		if err != nil {
			return err
		}
		backends = append(backends, client)
		fmt.Printf("hash node %s on %s\n", id, srv.Addr)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	cluster, err := shhc.NewCluster(shhc.ClusterConfig{}, backends...)
	if err != nil {
		return err
	}
	defer cluster.Close()

	// --- Tier 4: cloud storage. ---
	cloud := shhc.NewCloudStore()
	defer cloud.Close()

	// --- Tier 2: web front-end. ---
	front, err := shhc.NewFrontend(cluster, cloud)
	if err != nil {
		return err
	}
	addr, err := front.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer front.Close()
	frontURL := "http://" + addr.String()
	fmt.Printf("web front-end on %s\n\n", frontURL)

	// --- Tier 1: the backup client. ---
	client, err := shhc.NewBackupClient(frontURL, 4096)
	if err != nil {
		return err
	}

	// A 4 MiB "machine image".
	image := make([]byte, 4<<20)
	rand.New(rand.NewSource(42)).Read(image)

	report, err := client.Backup(context.Background(), "image-gen1", bytes.NewReader(image))
	if err != nil {
		return err
	}
	fmt.Printf("generation 1 (initial full backup):\n  %s\n", report)

	// Unchanged re-backup: the classic cloud-backup scenario.
	report2, err := client.Backup(context.Background(), "image-gen2", bytes.NewReader(image))
	if err != nil {
		return err
	}
	fmt.Printf("generation 2 (unchanged re-backup):\n  %s\n", report2)

	// 2% churn.
	churned := append([]byte(nil), image...)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		off := rng.Intn(len(churned) - 4096)
		rng.Read(churned[off : off+4096])
	}
	report3, err := client.Backup(context.Background(), "image-gen3", bytes.NewReader(churned))
	if err != nil {
		return err
	}
	fmt.Printf("generation 3 (2%% churn):\n  %s\n", report3)

	// Restore and verify generation 3.
	var restored bytes.Buffer
	if err := client.Restore(context.Background(), report3.Manifest, &restored); err != nil {
		return err
	}
	if !bytes.Equal(restored.Bytes(), churned) {
		return fmt.Errorf("restore verification FAILED")
	}
	fmt.Printf("\nrestore of generation 3 verified: %d bytes intact\n", restored.Len())

	st := cloud.Stats()
	total := report.BytesTotal + report2.BytesTotal + report3.BytesTotal
	fmt.Printf("\ncloud store: %s\n", st)
	fmt.Printf("logical data backed up: %d bytes; stored: %d bytes; WAN bytes saved: %d (%.1f%%)\n",
		total, st.Bytes, total-st.Bytes, float64(total-st.Bytes)/float64(total)*100)
	return nil
}
