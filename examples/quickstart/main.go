// Quickstart: stand up an in-process SHHC cluster and deduplicate a few
// chunks through the Figure 4 lookup flow.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"shhc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Four hybrid nodes, as in the paper's largest evaluated cluster.
	cluster, err := shhc.NewLocalCluster(shhc.ClusterOptions{Nodes: 4})
	if err != nil {
		return err
	}
	defer cluster.Close()

	chunks := [][]byte{
		[]byte("the quick brown fox"),
		[]byte("jumps over the lazy dog"),
		[]byte("the quick brown fox"), // duplicate of chunk 0
	}

	for i, data := range chunks {
		fp := shhc.FingerprintOf(data)
		res, err := cluster.LookupOrInsert(context.Background(), fp, shhc.Value(i+1))
		if err != nil {
			return err
		}
		owner, _ := cluster.Owner(fp)
		if res.Exists {
			fmt.Printf("chunk %d (%s...): DUPLICATE, stored as locator %d on %s (answered by %s)\n",
				i, fp.Short(), res.Value, owner, res.Source)
		} else {
			fmt.Printf("chunk %d (%s...): NEW, assigned locator %d on %s\n",
				i, fp.Short(), i+1, owner)
		}
	}

	// Batched lookups are how the web front-end talks to the cluster.
	pairs := make([]shhc.Pair, 0, len(chunks))
	for i, data := range chunks {
		pairs = append(pairs, shhc.Pair{FP: shhc.FingerprintOf(data), Val: shhc.Value(i + 1)})
	}
	results, err := cluster.BatchLookupOrInsert(context.Background(), pairs)
	if err != nil {
		return err
	}
	dups := 0
	for _, r := range results {
		if r.Exists {
			dups++
		}
	}
	fmt.Printf("\nbatch of %d: %d duplicates detected (all, since everything is stored now)\n",
		len(results), dups)

	stats, err := cluster.Stats(context.Background())
	if err != nil {
		return err
	}
	fmt.Println("\nper-node statistics:")
	for _, st := range stats {
		fmt.Printf("  %-8s lookups=%-3d inserts=%-3d cacheHits=%-3d bloomShortCircuits=%-3d entries=%d\n",
			st.ID, st.Lookups, st.Inserts, st.CacheHits, st.BloomShort, st.StoreEntries)
	}
	return nil
}
