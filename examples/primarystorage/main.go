// Primarystorage: inline deduplication for primary storage — the paper's
// first future-work item — built on the SHHC index. Two virtual machine
// volumes share a block pool; identical OS blocks are stored once, and
// overwrites/TRIM release physical space immediately.
//
//	go run ./examples/primarystorage
package main

import (
	"fmt"
	"log"
	"math/rand"

	"shhc"
	"shhc/internal/blockdev"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := shhc.NewLocalCluster(shhc.ClusterOptions{Nodes: 4})
	if err != nil {
		return err
	}
	defer cluster.Close()

	pool := blockdev.NewBlockPool()

	// Two 8 MiB VM volumes sharing the pool and the SHHC index.
	newVolume := func() (*blockdev.Device, error) {
		return blockdev.New(blockdev.Config{
			BlockSize: 4096,
			Blocks:    2048,
			Index:     cluster,
			Pool:      pool,
		})
	}
	vm1, err := newVolume()
	if err != nil {
		return err
	}
	vm2, err := newVolume()
	if err != nil {
		return err
	}

	// A shared "base image": 4 MiB of blocks both VMs contain.
	rng := rand.New(rand.NewSource(99))
	baseImage := make([][]byte, 1024)
	for i := range baseImage {
		baseImage[i] = make([]byte, 4096)
		rng.Read(baseImage[i])
	}
	for i, block := range baseImage {
		if err := vm1.WriteBlock(i, block); err != nil {
			return err
		}
		if err := vm2.WriteBlock(i, block); err != nil {
			return err
		}
	}
	st := pool.Stats()
	fmt.Printf("after installing the same base image on both VMs:\n")
	fmt.Printf("  logical blocks written: %d, physical blocks stored: %d (%.0f%% saved)\n",
		2*len(baseImage), st.Blocks, (1-float64(st.Blocks)/float64(2*len(baseImage)))*100)

	// VM2 diverges: 256 private blocks.
	private := make([]byte, 4096)
	for i := 0; i < 256; i++ {
		rng.Read(private)
		if err := vm2.WriteBlock(1024+i, private); err != nil {
			return err
		}
	}
	st = pool.Stats()
	fmt.Printf("after VM2 writes 256 private blocks: physical blocks = %d\n", st.Blocks)

	// VM1 is deleted: trim all its blocks. Shared content survives via
	// VM2's references; nothing VM2 needs is freed.
	for i := 0; i < 2048; i++ {
		if err := vm1.Trim(i); err != nil {
			return err
		}
	}
	st = pool.Stats()
	fmt.Printf("after deleting VM1 (TRIM all): physical blocks = %d (VM2's data intact)\n", st.Blocks)

	// Verify VM2 still reads its base image correctly.
	for i, want := range baseImage[:8] {
		got, err := vm2.ReadBlock(i)
		if err != nil {
			return err
		}
		if string(got) != string(want) {
			return fmt.Errorf("VM2 block %d corrupted after VM1 deletion", i)
		}
	}
	fmt.Println("VM2 spot-check reads verified after VM1 deletion")

	v2 := vm2.Stats()
	fmt.Printf("\nVM2 stats: %d logical writes, %d dedup hits, %d mapped blocks\n",
		v2.LogicalWrites, v2.DedupHits, v2.MappedBlocks)
	return nil
}
