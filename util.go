package shhc

import "time"

// millis converts an integer millisecond count to a Duration, clamping
// non-positive values to zero (which selects the batcher's default).
func millis(ms int) time.Duration {
	if ms <= 0 {
		return 0
	}
	return time.Duration(ms) * time.Millisecond
}
