module shhc

go 1.24
